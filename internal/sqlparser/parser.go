package sqlparser

import (
	"strings"
)

// Parse parses a SQL-92 SELECT statement (stage one of the translation).
// It returns a typed AST or a ParseError describing the first syntax error.
func Parse(src string) (*SelectStmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	return ParseTokens(toks)
}

// ParseTokens parses an already-lexed token stream (as produced by Lex).
// Splitting the two phases lets callers observe lexing and parsing as
// separate pipeline stages without scanning the source twice.
func ParseTokens(toks []Token) (*SelectStmt, error) {
	if len(toks) == 0 || toks[len(toks)-1].Type != TokEOF {
		return nil, errAt(Pos{Line: 1, Col: 1}, "token stream does not end in EOF")
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().IsOp(";") {
		p.advance()
	}
	if p.peek().Type != TokEOF {
		return nil, errAt(p.peek().Pos, "unexpected %s after end of statement", p.peek())
	}
	stmt.ParamCount = p.paramCount
	return stmt, nil
}

type parser struct {
	toks       []Token
	pos        int
	paramCount int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Type != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(keyword string) bool {
	if p.peek().Is(keyword) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.peek().IsOp(op) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(keyword string) error {
	if !p.accept(keyword) {
		return errAt(p.peek().Pos, "expected %s, found %s", keyword, p.peek())
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return errAt(p.peek().Pos, "expected %q, found %s", op, p.peek())
	}
	return nil
}

// identifier-ish token: a plain or delimited identifier, or a keyword that
// is allowed in identifier position (function-name keywords).
func (p *parser) acceptIdent() (string, bool) {
	t := p.peek()
	switch t.Type {
	case TokIdent, TokQuotedIdent:
		p.advance()
		return t.Text, true
	case TokKeyword:
		if functionKeywords[t.Text] {
			p.advance()
			return t.Text, true
		}
	}
	return "", false
}

func (p *parser) expectIdent(what string) (string, error) {
	if name, ok := p.acceptIdent(); ok {
		return name, nil
	}
	return "", errAt(p.peek().Pos, "expected %s, found %s", what, p.peek())
}

// acceptAliasIdent accepts only plain or delimited identifiers — never
// keywords — for use in implicit-alias position, where accepting keyword
// spellings like LEFT would swallow join syntax ("A LEFT JOIN B").
func (p *parser) acceptAliasIdent() (string, bool) {
	t := p.peek()
	if t.Type == TokIdent || t.Type == TokQuotedIdent {
		p.advance()
		return t.Text, true
	}
	return "", false
}

// parseSelectStmt parses a query expression with optional ORDER BY.
func (p *parser) parseSelectStmt() (*SelectStmt, error) {
	start := p.peek().Pos
	body, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Pos: start, Body: body, Limit: -1}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.peek().Is("FETCH") {
		n, err := p.parseFetchFirst()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	return stmt, nil
}

// parseFetchFirst parses FETCH FIRST|NEXT [n] ROW|ROWS ONLY (n defaults
// to 1, per SQL:2008).
func (p *parser) parseFetchFirst() (int, error) {
	p.advance() // FETCH
	if !p.accept("FIRST") && !p.accept("NEXT") {
		return 0, errAt(p.peek().Pos, "expected FIRST or NEXT after FETCH, found %s", p.peek())
	}
	n := 1
	if p.peek().Type == TokInteger {
		n = atoiSafe(p.advance().Text)
	}
	if !p.accept("ROW") && !p.accept("ROWS") {
		return 0, errAt(p.peek().Pos, "expected ROW or ROWS, found %s", p.peek())
	}
	if err := p.expect("ONLY"); err != nil {
		return 0, err
	}
	return n, nil
}

func (p *parser) parseOrderItem() (OrderItem, error) {
	start := p.peek().Pos
	e, err := p.parseExpr()
	if err != nil {
		return OrderItem{}, err
	}
	item := OrderItem{Pos: start, Expr: e}
	if p.accept("DESC") {
		item.Desc = true
	} else {
		p.accept("ASC")
	}
	return item, nil
}

// parseQueryExpr handles UNION/EXCEPT (left-associative, lowest precedence).
func (p *parser) parseQueryExpr() (QueryExpr, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op SetOpType
		switch {
		case p.peek().Is("UNION"):
			op = SetUnion
		case p.peek().Is("EXCEPT"):
			op = SetExcept
		default:
			return left, nil
		}
		pos := p.advance().Pos
		all := p.accept("ALL")
		if !all {
			p.accept("DISTINCT")
		}
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &SetOpExpr{Pos: pos, Op: op, All: all, Left: left, Right: right}
	}
}

// parseQueryTerm handles INTERSECT (binds tighter than UNION per SQL-92).
func (p *parser) parseQueryTerm() (QueryExpr, error) {
	left, err := p.parseQueryPrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("INTERSECT") {
		pos := p.advance().Pos
		all := p.accept("ALL")
		if !all {
			p.accept("DISTINCT")
		}
		right, err := p.parseQueryPrimary()
		if err != nil {
			return nil, err
		}
		left = &SetOpExpr{Pos: pos, Op: SetIntersect, All: all, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseQueryPrimary() (QueryExpr, error) {
	if p.peek().IsOp("(") {
		p.advance()
		inner, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseQuerySpec()
}

// parseQuerySpec parses one SELECT block.
func (p *parser) parseQuerySpec() (*QuerySpec, error) {
	start := p.peek().Pos
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	q := &QuerySpec{Pos: start}
	if p.accept("DISTINCT") {
		q.Distinct = true
	} else {
		p.accept("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.accept("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			q.From = append(q.From, ref)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.accept("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	start := p.peek().Pos
	// Bare `*`.
	if p.peek().IsOp("*") {
		p.advance()
		return SelectItem{Pos: start, Wildcard: true}, nil
	}
	// Qualified wildcard `T.*` (also `S.T.*`): scan ahead for ident(.ident)*.*
	if p.peek().Type == TokIdent || p.peek().Type == TokQuotedIdent {
		n := 0
		for {
			if !(p.peekAt(n).Type == TokIdent || p.peekAt(n).Type == TokQuotedIdent) {
				n = -1
				break
			}
			if !p.peekAt(n + 1).IsOp(".") {
				n = -1
				break
			}
			if p.peekAt(n + 2).IsOp("*") {
				n += 2
				break
			}
			n += 2
		}
		if n > 0 {
			var quals []string
			for i := 0; i < n; i += 2 {
				quals = append(quals, p.advance().Text)
				p.advance() // the dot
			}
			p.advance() // the star
			return SelectItem{Pos: start, Wildcard: true, Qualifier: strings.Join(quals, ".")}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Pos: start, Expr: e}
	if p.accept("AS") {
		name, err := p.expectIdent("column alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if name, ok := p.acceptAliasIdent(); ok {
		item.Alias = name
	}
	return item, nil
}

// parseTableRef parses one FROM item: a chain of joins over table primaries.
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		join, ok, err := p.parseJoinTail(left)
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		left = join
	}
}

// parseJoinTail parses `[NATURAL] [join type] JOIN right [ON …|USING …]`
// if present.
func (p *parser) parseJoinTail(left TableRef) (TableRef, bool, error) {
	start := p.peek().Pos
	natural := false
	jt := JoinInner
	explicit := false
	save := p.pos
	if p.accept("NATURAL") {
		natural = true
	}
	switch {
	case p.accept("INNER"):
		jt, explicit = JoinInner, true
	case p.accept("LEFT"):
		p.accept("OUTER")
		jt, explicit = JoinLeftOuter, true
	case p.accept("RIGHT"):
		p.accept("OUTER")
		jt, explicit = JoinRightOuter, true
	case p.accept("FULL"):
		p.accept("OUTER")
		jt, explicit = JoinFullOuter, true
	case p.accept("CROSS"):
		jt, explicit = JoinCross, true
	}
	if !p.peek().Is("JOIN") {
		if natural || explicit {
			// LEFT/RIGHT may have been a function name; rewind.
			p.pos = save
		}
		return nil, false, nil
	}
	p.advance() // JOIN
	right, err := p.parseTablePrimary()
	if err != nil {
		return nil, false, err
	}
	j := &JoinExpr{Pos: start, Type: jt, Left: left, Right: right, Natural: natural}
	if jt == JoinCross {
		return j, true, nil
	}
	if natural {
		return j, true, nil
	}
	switch {
	case p.accept("ON"):
		cond, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		j.Cond = cond
	case p.accept("USING"):
		if err := p.expectOp("("); err != nil {
			return nil, false, err
		}
		for {
			name, err := p.expectIdent("column name")
			if err != nil {
				return nil, false, err
			}
			j.Using = append(j.Using, name)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, false, err
		}
	default:
		return nil, false, errAt(p.peek().Pos, "expected ON or USING after JOIN, found %s", p.peek())
	}
	return j, true, nil
}

// parseTablePrimary parses a base table, a derived table, or a
// parenthesized join.
func (p *parser) parseTablePrimary() (TableRef, error) {
	start := p.peek().Pos
	if p.peek().IsOp("(") {
		if p.peekAt(1).Is("SELECT") || p.peekAt(1).IsOp("(") && p.subqueryAhead() {
			p.advance() // (
			sub, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			d := &DerivedTable{Pos: start, Query: sub}
			p.accept("AS")
			name, err := p.expectIdent("derived table alias")
			if err != nil {
				return nil, errAt(start, "derived table requires an alias (SQL-92): %v", err)
			}
			d.Alias = name
			if p.peek().IsOp("(") {
				p.advance()
				for {
					col, err := p.expectIdent("derived column alias")
					if err != nil {
						return nil, err
					}
					d.ColumnAliases = append(d.ColumnAliases, col)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return d, nil
		}
		// Parenthesized join: ( A JOIN B ON ... ) [AS alias]
		p.advance() // (
		inner, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if j, ok := inner.(*JoinExpr); ok {
			if p.accept("AS") {
				name, err := p.expectIdent("join alias")
				if err != nil {
					return nil, err
				}
				j.Alias = name
			} else if name, ok := p.acceptAliasIdent(); ok {
				j.Alias = name
			}
			return j, nil
		}
		return inner, nil
	}
	// Base table: [catalog.][schema.]name [AS alias]
	first, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	parts := []string{first}
	for p.peek().IsOp(".") {
		p.advance()
		next, err := p.expectIdent("name after '.'")
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	t := &TableName{Pos: start}
	switch len(parts) {
	case 1:
		t.Name = parts[0]
	case 2:
		t.Schema, t.Name = parts[0], parts[1]
	case 3:
		t.Catalog, t.Schema, t.Name = parts[0], parts[1], parts[2]
	default:
		return nil, errAt(start, "table name has too many qualifiers: %s", strings.Join(parts, "."))
	}
	if p.accept("AS") {
		name, err := p.expectIdent("table alias")
		if err != nil {
			return nil, err
		}
		t.Alias = name
	} else if name, ok := p.acceptAliasIdent(); ok {
		t.Alias = name
	}
	return t, nil
}

// subqueryAhead peeks past nested '(' to see whether a SELECT keyword
// begins the parenthesized region, distinguishing ((SELECT …)) derived
// tables from parenthesized joins.
func (p *parser) subqueryAhead() bool {
	n := 1
	for p.peekAt(n).IsOp("(") {
		n++
	}
	return p.peekAt(n).Is("SELECT")
}
