package sqlparser

import (
	"strings"
	"testing"
)

// FuzzParseSelect checks the contract the driver relies on: whatever
// bytes a client sends as SQL, the parser returns (*SelectStmt, error) —
// it never panics and never loops. When a statement parses, re-rendering
// and re-parsing it must succeed too (the parser's own output is valid
// input).
func FuzzParseSelect(f *testing.F) {
	seeds := []string{
		"SELECT * FROM CUSTOMERS",
		"SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS",
		"SELECT C.*, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID",
		"SELECT CUSTOMERS.CUSTOMERNAME FROM CUSTOMERS INNER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID",
		"SELECT A.CUSTOMERNAME FROM CUSTOMERS A LEFT OUTER JOIN PAYMENTS B ON A.CUSTOMERID = B.CUSTID",
		"SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY DESC",
		"SELECT CUSTOMERID FROM CUSTOMERS UNION ALL SELECT CUSTID FROM PAYMENTS",
		"SELECT CUSTOMERID FROM CUSTOMERS EXCEPT SELECT CUSTID FROM PAYMENTS",
		"SELECT CITY, COUNT(*), MAX(CUSTOMERID) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1",
		"SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERNAME LIKE 'A%' AND CUSTOMERID BETWEEN 5 AND 10",
		"SELECT CUSTOMERID FROM CUSTOMERS WHERE CITY IS NOT NULL",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ? AND CITY = ?",
		"SELECT UPPER(CUSTOMERNAME), SUBSTRING(CUSTOMERNAME FROM 1 FOR 3) FROM CUSTOMERS",
		"SELECT CAST(CUSTOMERID AS VARCHAR(10)) FROM CUSTOMERS",
		"SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS WHERE PAYMENT > 100)",
		"SELECT EXTRACT(YEAR FROM SIGNUPDATE) FROM CUSTOMERS",
		"SELECT * FROM CUSTOMERS WHERE (CUSTOMERID, CITY) = (1, 'Oslo')",
		"select count(*) from payments where paydate >= DATE '2005-01-01'",
		"SELECT -1.5e10, 'it''s', \"quoted id\" FROM CUSTOMERS",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			if stmt != nil {
				t.Fatalf("non-nil stmt alongside error %v", err)
			}
			return
		}
		rendered := stmt.SQL()
		if strings.TrimSpace(rendered) == "" {
			t.Fatalf("parsed statement renders empty (input %q)", sql)
		}
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, sql, err)
		}
	})
}
