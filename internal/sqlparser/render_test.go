package sqlparser

import (
	"strings"
	"testing"
)

// TestSQLRenderKitchenSink drives SQL() through every node type at once.
// Canonical rendering is load-bearing: the translator matches GROUP BY
// keys and ORDER BY expressions by canonical text.
func TestSQLRenderKitchenSink(t *testing.T) {
	src := `SELECT DISTINCT T.*, A.X AS AX, -B.Y, COUNT(*), SUM(DISTINCT Z),
		CASE W WHEN 1 THEN 'a' ELSE 'b' END,
		CASE WHEN U > 0 THEN 1 END,
		CAST(V AS DECIMAL(8, 2)), CAST(V2 AS CHAR(3)),
		(SELECT MAX(M) FROM INNER1), ?, NULL, TRUE, FALSE,
		DATE '2006-01-02', TIME '10:00:00', TIMESTAMP '2006-01-02 10:00:00',
		N || 'x', UPPER(S)
	FROM T, (SELECT P FROM Q) AS D (P2),
		(A2 LEFT OUTER JOIN B2 ON A2.K = B2.K) AS J,
		C2 CROSS JOIN D2, E2 NATURAL JOIN F2, G2 JOIN H2 USING (UK)
	WHERE T.C1 BETWEEN 1 AND 2
		AND T.C2 NOT BETWEEN 3 AND 4
		AND T.C3 IN (1, 2)
		AND T.C4 NOT IN (SELECT I FROM INNER2)
		AND T.C5 LIKE 'a%' ESCAPE '!'
		AND T.C6 IS NULL
		AND T.C7 IS NOT NULL
		AND EXISTS (SELECT 1 FROM INNER3)
		AND T.C8 > ANY (SELECT N2 FROM INNER4)
		AND T.C9 <= ALL (SELECT N3 FROM INNER5)
		AND (T.CA, T.CB) = (1, 'x')
		AND NOT (T.CC = 1 OR T.CD / 2 * 3 - 4 + 5 <> 6)
	GROUP BY T.G1, T.G2
	HAVING COUNT(*) > 1
	ORDER BY 1 DESC, AX ASC
	FETCH FIRST 7 ROWS ONLY`
	stmt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.SQL()
	// The rendering must itself parse and be a fixed point.
	stmt2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse: %v\nrendered: %s", err, rendered)
	}
	if stmt2.SQL() != rendered {
		t.Fatalf("SQL() not a fixed point:\n1: %s\n2: %s", rendered, stmt2.SQL())
	}
	for _, want := range []string{
		"T.*", "AS AX", "COUNT(*)", "SUM(DISTINCT Z)",
		"CASE W WHEN 1 THEN 'a' ELSE 'b' END",
		"CAST(V AS DECIMAL(8, 2))", "CAST(V2 AS CHAR(3))",
		"DATE '2006-01-02'", "TIMESTAMP '2006-01-02 10:00:00'",
		"NOT BETWEEN 3 AND 4", "NOT IN (SELECT",
		"LIKE 'a%' ESCAPE '!'", "IS NULL", "IS NOT NULL",
		"EXISTS (SELECT", "> ANY (SELECT", "<= ALL (SELECT",
		"(T.CA, T.CB) = (1, 'x')",
		"LEFT OUTER JOIN", "CROSS JOIN", "NATURAL", "USING (UK)",
		"GROUP BY T.G1, T.G2", "HAVING COUNT(*) > 1",
		"ORDER BY 1 DESC, AX", "FETCH FIRST 7 ROWS ONLY",
		"(P2)", "AS J",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered SQL missing %q:\n%s", want, rendered)
		}
	}
}

// TestSetOpRendering covers the set-operation SQL() paths.
func TestSetOpRendering(t *testing.T) {
	stmt, err := Parse("SELECT A FROM T UNION ALL SELECT A FROM U INTERSECT SELECT A FROM V EXCEPT SELECT A FROM W")
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.SQL()
	for _, want := range []string{"UNION ALL", "INTERSECT", "EXCEPT"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("missing %q in %s", want, rendered)
		}
	}
	if _, err := Parse(rendered); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

// TestQuotedSchemaRendering covers quoteIdentIfNeeded.
func TestQuotedSchemaRendering(t *testing.T) {
	stmt, err := Parse(`SELECT C FROM "My Schema/X".T`)
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.SQL()
	if !strings.Contains(rendered, `"My Schema/X".T`) {
		t.Fatalf("rendered = %s", rendered)
	}
	if _, err := Parse(rendered); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

// TestPositionAccessors confirms every node reports a position (used by
// error messages).
func TestPositionAccessors(t *testing.T) {
	stmt, err := Parse(`SELECT A, (B, C) FROM T JOIN (SELECT D FROM U) AS V ON T.K = V.D WHERE ? = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Position().Line != 1 {
		t.Fatal("stmt position")
	}
	seen := 0
	spec := stmt.Body.(*QuerySpec)
	if spec.Position().Line != 1 {
		t.Fatal("spec position")
	}
	for _, item := range spec.Items {
		if item.Expr != nil {
			WalkExpr(item.Expr, func(e Expr) bool {
				if e.Position().Line < 1 {
					t.Errorf("%T has no position", e)
				}
				seen++
				return true
			})
		}
		if item.Position().Line < 1 {
			t.Error("item position")
		}
	}
	WalkTableRefs(spec.From, func(r TableRef) {
		if r.Position().Line < 1 {
			t.Errorf("%T has no position", r)
		}
	})
	WalkExpr(spec.Where, func(e Expr) bool {
		if e.Position().Line < 1 {
			t.Errorf("%T has no position", e)
		}
		return true
	})
	if seen == 0 {
		t.Fatal("walk visited nothing")
	}
}

// TestOperatorClassPredicates pins the operator classification helpers the
// translator dispatches on.
func TestOperatorClassPredicates(t *testing.T) {
	if !BinEq.Comparison() || !BinGe.Comparison() || BinAdd.Comparison() {
		t.Fatal("Comparison()")
	}
	if !BinAnd.Logical() || !BinOr.Logical() || BinEq.Logical() {
		t.Fatal("Logical()")
	}
	if !BinAdd.Arithmetic() || !BinDiv.Arithmetic() || BinConcat.Arithmetic() {
		t.Fatal("Arithmetic()")
	}
	for op := BinAdd; op <= BinOr; op++ {
		if strings.Contains(op.String(), "BinaryOp(") {
			t.Errorf("missing spelling for op %d", op)
		}
	}
	for _, u := range []UnaryOp{UnaryMinus, UnaryPlus, UnaryNot} {
		if strings.Contains(u.String(), "UnaryOp(") {
			t.Errorf("missing spelling for unary %v", u)
		}
	}
	for _, j := range []JoinType{JoinInner, JoinLeftOuter, JoinRightOuter, JoinFullOuter, JoinCross} {
		if strings.Contains(j.String(), "JoinType(") {
			t.Errorf("missing spelling for join %v", j)
		}
	}
	for _, s := range []SetOpType{SetUnion, SetExcept, SetIntersect} {
		if strings.Contains(s.String(), "SetOpType(") {
			t.Errorf("missing spelling for set op %v", s)
		}
	}
	for _, k := range []TokenType{TokEOF, TokIdent, TokQuotedIdent, TokKeyword, TokString, TokInteger, TokDecimal, TokFloat, TokParam, TokOp} {
		if strings.Contains(k.String(), "TokenType(") {
			t.Errorf("missing name for token type %v", k)
		}
	}
}
