package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseError is a syntax error with source position, returned by the lexer
// and parser. Stage one rejects syntactically invalid SQL immediately.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql syntax error at %s: %s", e.Pos, e.Msg)
}

func errAt(pos Pos, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer scans SQL source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the token stream ending in a
// TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Type == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peekByteAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '-' && lx.peekByteAt(1) == '-':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case b == '/' && lx.peekByteAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errAt(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Type: TokEOF, Pos: start}, nil
	}
	b := lx.peekByte()
	switch {
	case isIdentStart(b):
		return lx.lexIdent(start), nil
	case b >= '0' && b <= '9':
		return lx.lexNumber(start)
	case b == '.' && isDigit(lx.peekByteAt(1)):
		return lx.lexNumber(start)
	case b == '\'':
		return lx.lexString(start)
	case b == '"':
		return lx.lexQuotedIdent(start)
	case b == '?':
		lx.advance()
		return Token{Type: TokParam, Text: "?", Pos: start}, nil
	}
	return lx.lexOperator(start)
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || isDigit(b) || b == '$' || b == '#'
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func (lx *lexer) lexIdent(start Pos) Token {
	begin := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peekByte()) {
		lx.advance()
	}
	text := strings.ToUpper(lx.src[begin:lx.off])
	if keywords[text] {
		return Token{Type: TokKeyword, Text: text, Pos: start}
	}
	return Token{Type: TokIdent, Text: text, Pos: start}
}

func (lx *lexer) lexNumber(start Pos) (Token, error) {
	begin := lx.off
	sawDot := false
	sawExp := false
	for lx.off < len(lx.src) {
		b := lx.peekByte()
		switch {
		case isDigit(b):
			lx.advance()
		case b == '.' && !sawDot && !sawExp:
			sawDot = true
			lx.advance()
		case (b == 'e' || b == 'E') && !sawExp && isExpTail(lx.src[lx.off+1:]):
			sawExp = true
			lx.advance() // e
			if lx.peekByte() == '+' || lx.peekByte() == '-' {
				lx.advance()
			}
		default:
			goto done
		}
	}
done:
	text := lx.src[begin:lx.off]
	if lx.off < len(lx.src) && isIdentStart(lx.peekByte()) {
		return Token{}, errAt(start, "malformed numeric literal %q", text+string(lx.peekByte()))
	}
	switch {
	case sawExp:
		return Token{Type: TokFloat, Text: text, Pos: start}, nil
	case sawDot:
		return Token{Type: TokDecimal, Text: text, Pos: start}, nil
	default:
		return Token{Type: TokInteger, Text: text, Pos: start}, nil
	}
}

func isExpTail(rest string) bool {
	if rest == "" {
		return false
	}
	i := 0
	if rest[0] == '+' || rest[0] == '-' {
		i = 1
	}
	return i < len(rest) && isDigit(rest[i])
}

func (lx *lexer) lexString(start Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errAt(start, "unterminated string literal")
		}
		c := lx.advance()
		if c == '\'' {
			if lx.peekByte() == '\'' { // doubled quote is an escaped quote
				lx.advance()
				b.WriteByte('\'')
				continue
			}
			return Token{Type: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
	}
}

func (lx *lexer) lexQuotedIdent(start Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errAt(start, "unterminated delimited identifier")
		}
		c := lx.advance()
		if c == '"' {
			if lx.peekByte() == '"' {
				lx.advance()
				b.WriteByte('"')
				continue
			}
			if b.Len() == 0 {
				return Token{}, errAt(start, "empty delimited identifier")
			}
			return Token{Type: TokQuotedIdent, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
	}
}

// operator spellings, longest first so "<=" wins over "<".
var operators = []string{"<>", "<=", ">=", "!=", "||", "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ".", ";"}

func (lx *lexer) lexOperator(start Pos) (Token, error) {
	rest := lx.src[lx.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op) {
			for range op {
				lx.advance()
			}
			text := op
			if text == "!=" { // normalize to the SQL-92 spelling
				text = "<>"
			}
			return Token{Type: TokOp, Text: text, Pos: start}, nil
		}
	}
	r := rune(lx.peekByte())
	if !unicode.IsPrint(r) {
		return Token{}, errAt(start, "unexpected byte 0x%02x", lx.peekByte())
	}
	return Token{}, errAt(start, "unexpected character %q", r)
}
