package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func spec(t *testing.T, stmt *SelectStmt) *QuerySpec {
	t.Helper()
	q, ok := stmt.Body.(*QuerySpec)
	if !ok {
		t.Fatalf("body is %T, want *QuerySpec", stmt.Body)
	}
	return q
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM CUSTOMERS")
	q := spec(t, stmt)
	if len(q.Items) != 1 || !q.Items[0].Wildcard {
		t.Fatalf("items = %+v", q.Items)
	}
	tn, ok := q.From[0].(*TableName)
	if !ok || tn.Name != "CUSTOMERS" {
		t.Fatalf("from = %+v", q.From[0])
	}
}

func TestParseSelectItemsAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT CUSTOMERID ID, CUSTOMERNAME AS NAME FROM CUSTOMERS")
	q := spec(t, stmt)
	if q.Items[0].Alias != "ID" || q.Items[1].Alias != "NAME" {
		t.Fatalf("aliases = %q %q", q.Items[0].Alias, q.Items[1].Alias)
	}
	if c := q.Items[0].Expr.(*ColumnRef); c.Column != "CUSTOMERID" {
		t.Fatalf("col = %+v", c)
	}
}

func TestParseQualifiedWildcard(t *testing.T) {
	stmt := mustParse(t, "SELECT C.*, O.ORDERID FROM CUSTOMERS C, ORDERS O")
	q := spec(t, stmt)
	if !q.Items[0].Wildcard || q.Items[0].Qualifier != "C" {
		t.Fatalf("item 0 = %+v", q.Items[0])
	}
	ref := q.Items[1].Expr.(*ColumnRef)
	if ref.Qualifier != "O" || ref.Column != "ORDERID" {
		t.Fatalf("item 1 = %+v", ref)
	}
	if len(q.From) != 2 {
		t.Fatalf("from = %d items", len(q.From))
	}
}

func TestParseWhereComparison(t *testing.T) {
	stmt := mustParse(t, "SELECT A FROM T WHERE A > 10 AND B = 'x' OR C <> 1.5")
	q := spec(t, stmt)
	or, ok := q.Where.(*BinaryExpr)
	if !ok || or.Op != BinOr {
		t.Fatalf("top = %+v", q.Where)
	}
	and := or.Left.(*BinaryExpr)
	if and.Op != BinAnd {
		t.Fatalf("left = %+v", or.Left)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT A + B * C - D / 2 FROM T")
	q := spec(t, stmt)
	// Expect ((A + (B*C)) - (D/2))
	top := q.Items[0].Expr.(*BinaryExpr)
	if top.Op != BinSub {
		t.Fatalf("top op = %v", top.Op)
	}
	add := top.Left.(*BinaryExpr)
	if add.Op != BinAdd {
		t.Fatalf("left = %v", add.Op)
	}
	if mul := add.Right.(*BinaryExpr); mul.Op != BinMul {
		t.Fatalf("B*C = %v", mul.Op)
	}
	if div := top.Right.(*BinaryExpr); div.Op != BinDiv {
		t.Fatalf("D/2 = %v", div.Op)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT (A + B) * C FROM T")
	q := spec(t, stmt)
	top := q.Items[0].Expr.(*BinaryExpr)
	if top.Op != BinMul {
		t.Fatalf("top = %v", top.Op)
	}
	if inner := top.Left.(*BinaryExpr); inner.Op != BinAdd {
		t.Fatalf("inner = %v", inner.Op)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	stmt := mustParse(t, "SELECT -A, -5 + 3 FROM T")
	q := spec(t, stmt)
	if u := q.Items[0].Expr.(*UnaryExpr); u.Op != UnaryMinus {
		t.Fatalf("item 0 = %+v", q.Items[0].Expr)
	}
	top := q.Items[1].Expr.(*BinaryExpr)
	if top.Op != BinAdd {
		t.Fatalf("item 1 top = %v", top.Op)
	}
}

func TestParseJoins(t *testing.T) {
	cases := []struct {
		src string
		typ JoinType
	}{
		{"SELECT * FROM A JOIN B ON A.X = B.Y", JoinInner},
		{"SELECT * FROM A INNER JOIN B ON A.X = B.Y", JoinInner},
		{"SELECT * FROM A LEFT JOIN B ON A.X = B.Y", JoinLeftOuter},
		{"SELECT * FROM A LEFT OUTER JOIN B ON A.X = B.Y", JoinLeftOuter},
		{"SELECT * FROM A RIGHT OUTER JOIN B ON A.X = B.Y", JoinRightOuter},
		{"SELECT * FROM A FULL OUTER JOIN B ON A.X = B.Y", JoinFullOuter},
		{"SELECT * FROM A CROSS JOIN B", JoinCross},
	}
	for _, c := range cases {
		q := spec(t, mustParse(t, c.src))
		j, ok := q.From[0].(*JoinExpr)
		if !ok {
			t.Fatalf("%q: from = %T", c.src, q.From[0])
		}
		if j.Type != c.typ {
			t.Fatalf("%q: type = %v, want %v", c.src, j.Type, c.typ)
		}
		if c.typ != JoinCross && j.Cond == nil {
			t.Fatalf("%q: missing ON condition", c.src)
		}
	}
}

func TestParseJoinChain(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT * FROM A JOIN B ON A.X=B.X JOIN C ON B.Y=C.Y"))
	outer := q.From[0].(*JoinExpr)
	inner, ok := outer.Left.(*JoinExpr)
	if !ok {
		t.Fatalf("joins should left-associate, left = %T", outer.Left)
	}
	if inner.Left.(*TableName).Name != "A" || outer.Right.(*TableName).Name != "C" {
		t.Fatal("wrong join association")
	}
}

func TestParseParenthesizedJoinWithAlias(t *testing.T) {
	// The paper's §3.4.2 example.
	src := "SELECT * FROM (A JOIN (B JOIN C ON B.C1 = C.C2) AS P ON A.C1 = P.C1)"
	q := spec(t, mustParse(t, src))
	outer := q.From[0].(*JoinExpr)
	innerJoin, ok := outer.Right.(*JoinExpr)
	if !ok {
		t.Fatalf("right side should be a join, got %T", outer.Right)
	}
	if innerJoin.Alias != "P" {
		t.Fatalf("inner join alias = %q", innerJoin.Alias)
	}
}

func TestParseNaturalAndUsing(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT * FROM A NATURAL JOIN B"))
	if j := q.From[0].(*JoinExpr); !j.Natural {
		t.Fatal("natural flag not set")
	}
	q = spec(t, mustParse(t, "SELECT * FROM A JOIN B USING (X, Y)"))
	j := q.From[0].(*JoinExpr)
	if len(j.Using) != 2 || j.Using[0] != "X" {
		t.Fatalf("using = %v", j.Using)
	}
}

func TestParseDerivedTable(t *testing.T) {
	src := "SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10"
	q := spec(t, mustParse(t, src))
	d, ok := q.From[0].(*DerivedTable)
	if !ok || d.Alias != "INFO" {
		t.Fatalf("from = %+v", q.From[0])
	}
	inner := spec(t, d.Query)
	if inner.Items[0].Alias != "ID" {
		t.Fatalf("inner items = %+v", inner.Items)
	}
}

func TestParseDerivedTableRequiresAlias(t *testing.T) {
	if _, err := Parse("SELECT * FROM (SELECT A FROM T)"); err == nil {
		t.Fatal("derived table without alias should be rejected")
	}
}

func TestParseDerivedColumnList(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT * FROM (SELECT A, B FROM T) AS D (X, Y)"))
	d := q.From[0].(*DerivedTable)
	if len(d.ColumnAliases) != 2 || d.ColumnAliases[1] != "Y" {
		t.Fatalf("column aliases = %v", d.ColumnAliases)
	}
}

func TestParseGroupByHaving(t *testing.T) {
	src := "SELECT DEPT, COUNT(*) FROM EMP GROUP BY DEPT HAVING COUNT(*) > 5"
	q := spec(t, mustParse(t, src))
	if len(q.GroupBy) != 1 {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	if q.Having == nil {
		t.Fatal("missing having")
	}
	f := q.Items[1].Expr.(*FuncCall)
	if !f.Star || f.Name != "COUNT" || !f.IsAggregate() {
		t.Fatalf("count(*) = %+v", f)
	}
}

func TestParseAggregateDistinct(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT COUNT(DISTINCT CITY) FROM T"))
	f := q.Items[0].Expr.(*FuncCall)
	if !f.Distinct || len(f.Args) != 1 {
		t.Fatalf("f = %+v", f)
	}
	if _, err := Parse("SELECT COUNT(DISTINCT A, B) FROM T"); err == nil {
		t.Fatal("DISTINCT with two args should be rejected")
	}
}

func TestParseOrderBy(t *testing.T) {
	stmt := mustParse(t, "SELECT A, B FROM T ORDER BY A DESC, 2, B ASC")
	if len(stmt.OrderBy) != 3 {
		t.Fatalf("order by = %v", stmt.OrderBy)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[2].Desc {
		t.Fatal("desc flags wrong")
	}
	if lit, ok := stmt.OrderBy[1].Expr.(*Literal); !ok || lit.Text != "2" {
		t.Fatalf("ordinal = %+v", stmt.OrderBy[1].Expr)
	}
}

func TestParseSetOps(t *testing.T) {
	stmt := mustParse(t, "SELECT A FROM T UNION SELECT A FROM U INTERSECT SELECT A FROM V")
	// INTERSECT binds tighter: UNION(T, INTERSECT(U, V))
	union, ok := stmt.Body.(*SetOpExpr)
	if !ok || union.Op != SetUnion {
		t.Fatalf("top = %+v", stmt.Body)
	}
	inter, ok := union.Right.(*SetOpExpr)
	if !ok || inter.Op != SetIntersect {
		t.Fatalf("right = %+v", union.Right)
	}
}

func TestParseUnionAll(t *testing.T) {
	stmt := mustParse(t, "SELECT A FROM T UNION ALL SELECT A FROM U")
	u := stmt.Body.(*SetOpExpr)
	if !u.All {
		t.Fatal("ALL flag not set")
	}
}

func TestParseExcept(t *testing.T) {
	stmt := mustParse(t, "(SELECT A FROM T) EXCEPT (SELECT A FROM U)")
	u := stmt.Body.(*SetOpExpr)
	if u.Op != SetExcept {
		t.Fatalf("op = %v", u.Op)
	}
}

func TestParseOrderByAppliesToWholeSetOp(t *testing.T) {
	stmt := mustParse(t, "SELECT A FROM T UNION SELECT A FROM U ORDER BY A")
	if _, ok := stmt.Body.(*SetOpExpr); !ok {
		t.Fatalf("body = %T", stmt.Body)
	}
	if len(stmt.OrderBy) != 1 {
		t.Fatal("order by should attach to the set operation result")
	}
}

func TestParsePredicates(t *testing.T) {
	q := spec(t, mustParse(t, `SELECT * FROM T WHERE A BETWEEN 1 AND 10
		AND B NOT BETWEEN 2 AND 3
		AND C IN (1, 2, 3)
		AND D NOT IN (SELECT X FROM U)
		AND E LIKE 'a%' ESCAPE '\'
		AND F NOT LIKE '_b'
		AND G IS NULL
		AND H IS NOT NULL
		AND EXISTS (SELECT 1 FROM V)
		AND I = ANY (SELECT Y FROM W)
		AND J < ALL (SELECT Z FROM X2)`))
	var kinds []string
	var visit func(Expr)
	visit = func(e Expr) {
		if b, ok := e.(*BinaryExpr); ok && b.Op == BinAnd {
			visit(b.Left)
			visit(b.Right)
			return
		}
		switch e := e.(type) {
		case *BetweenExpr:
			if e.Not {
				kinds = append(kinds, "notbetween")
			} else {
				kinds = append(kinds, "between")
			}
		case *InExpr:
			if e.Subquery != nil {
				kinds = append(kinds, "insub")
			} else {
				kinds = append(kinds, "inlist")
			}
		case *LikeExpr:
			if e.Escape != nil {
				kinds = append(kinds, "likeesc")
			} else {
				kinds = append(kinds, "like")
			}
		case *IsNullExpr:
			if e.Not {
				kinds = append(kinds, "notnull")
			} else {
				kinds = append(kinds, "isnull")
			}
		case *ExistsExpr:
			kinds = append(kinds, "exists")
		case *QuantifiedExpr:
			kinds = append(kinds, "quant:"+e.Quant.String())
		default:
			kinds = append(kinds, "other")
		}
	}
	visit(q.Where)
	want := "between notbetween inlist insub likeesc like isnull notnull exists quant:ANY quant:ALL"
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("predicates = %s\nwant %s", got, want)
	}
}

func TestParseCase(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT CASE WHEN A > 1 THEN 'big' ELSE 'small' END FROM T"))
	c := q.Items[0].Expr.(*CaseExpr)
	if c.Operand != nil || len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("case = %+v", c)
	}
	q = spec(t, mustParse(t, "SELECT CASE A WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM T"))
	c = q.Items[0].Expr.(*CaseExpr)
	if c.Operand == nil || len(c.Whens) != 2 || c.Else != nil {
		t.Fatalf("case = %+v", c)
	}
	if _, err := Parse("SELECT CASE END FROM T"); err == nil {
		t.Fatal("CASE without WHEN should be rejected")
	}
}

func TestParseCast(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT CAST(A AS DECIMAL(10, 2)), CAST(B AS INT) FROM T"))
	c := q.Items[0].Expr.(*CastExpr)
	if c.Type.Name != "DECIMAL" || c.Type.Precision != 10 || c.Type.Scale != 2 {
		t.Fatalf("type = %+v", c.Type)
	}
	c2 := q.Items[1].Expr.(*CastExpr)
	if c2.Type.Name != "INTEGER" {
		t.Fatalf("INT should canonicalize to INTEGER, got %s", c2.Type.Name)
	}
}

func TestParseSpecialFunctionForms(t *testing.T) {
	q := spec(t, mustParse(t, `SELECT SUBSTRING(NAME FROM 2 FOR 3),
		SUBSTRING(NAME, 2), POSITION('a' IN NAME), EXTRACT(YEAR FROM D),
		TRIM(LEADING FROM NAME), TRIM(NAME), TRIM(BOTH 'x' FROM NAME) FROM T`))
	names := []string{}
	for _, it := range q.Items {
		names = append(names, it.Expr.(*FuncCall).Name)
	}
	want := "SUBSTRING SUBSTRING POSITION EXTRACT_YEAR LTRIM TRIM TRIM"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("names = %s, want %s", got, want)
	}
	sub := q.Items[0].Expr.(*FuncCall)
	if len(sub.Args) != 3 {
		t.Fatalf("substring args = %d", len(sub.Args))
	}
	trimBoth := q.Items[6].Expr.(*FuncCall)
	if len(trimBoth.Args) != 2 {
		t.Fatalf("trim-both args = %d", len(trimBoth.Args))
	}
}

func TestParseDatetimeLiterals(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT * FROM T WHERE D = DATE '2006-01-02' AND TS = TIMESTAMP '2006-01-02 10:00:00'"))
	refs := 0
	WalkExpr(q.Where, func(e Expr) bool {
		if l, ok := e.(*Literal); ok && (l.Type == LitDate || l.Type == LitTimestamp) {
			refs++
		}
		return true
	})
	if refs != 2 {
		t.Fatalf("datetime literals found = %d", refs)
	}
}

func TestParseParams(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM T WHERE A = ? AND B > ?")
	if stmt.ParamCount != 2 {
		t.Fatalf("param count = %d", stmt.ParamCount)
	}
	q := spec(t, stmt)
	params := CollectParams(q.Where)
	if len(params) != 2 || params[0].Index != 1 || params[1].Index != 2 {
		t.Fatalf("params = %+v", params)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT (SELECT MAX(X) FROM U) FROM T"))
	if _, ok := q.Items[0].Expr.(*SubqueryExpr); !ok {
		t.Fatalf("item = %T", q.Items[0].Expr)
	}
}

func TestParseConcat(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT A || B || 'x' FROM T"))
	top := q.Items[0].Expr.(*BinaryExpr)
	if top.Op != BinConcat {
		t.Fatalf("op = %v", top.Op)
	}
}

func TestParseStringConcatFunction(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT CONCAT(A, B) FROM T"))
	f := q.Items[0].Expr.(*FuncCall)
	if f.Name != "CONCAT" || len(f.Args) != 2 {
		t.Fatalf("f = %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT * FROM",
		"SELECT * FROM T WHERE",
		"SELECT * FROM T GROUP",
		"SELECT * FROM T ORDER",
		"INSERT INTO T VALUES (1)",
		"SELECT * FROM T JOIN U", // missing ON/USING
		"SELECT * FROM T trailing garbage (",
		"SELECT A B C FROM T",
		"SELECT * FROM T WHERE A NOT 5",
		"SELECT CAST(A AS ) FROM T",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("Parse(%q) error type = %T", src, err)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("SELECT *\nFROM T WHERE ???")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if pe.Pos.Line != 2 {
		t.Fatalf("pos = %v", pe.Pos)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("message %q should include position", err.Error())
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT * FROM T;")
}

func TestSQLRoundTripReparses(t *testing.T) {
	srcs := []string{
		"SELECT * FROM CUSTOMERS",
		"SELECT DISTINCT A AS X, B FROM T WHERE A > 10 ORDER BY X DESC",
		"SELECT C.A, D.B FROM C INNER JOIN D ON C.K = D.K",
		"SELECT * FROM (SELECT A FROM T) AS S WHERE S.A IS NOT NULL",
		"SELECT A FROM T UNION ALL SELECT A FROM U",
		"SELECT DEPT, COUNT(*) FROM EMP GROUP BY DEPT HAVING COUNT(*) > 2",
		"SELECT CASE WHEN A = 1 THEN 'x' ELSE 'y' END FROM T",
		"SELECT CAST(A AS VARCHAR(10)) FROM T",
		"SELECT * FROM A LEFT OUTER JOIN B ON A.X = B.Y",
		"SELECT SUM(X * 2) / COUNT(*) FROM T WHERE Y BETWEEN 1 AND 2",
	}
	for _, src := range srcs {
		stmt := mustParse(t, src)
		rendered := stmt.SQL()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, src, err)
		}
		if stmt2.SQL() != rendered {
			t.Fatalf("SQL() not stable:\n 1: %s\n 2: %s", rendered, stmt2.SQL())
		}
	}
}

func TestWalkHelpers(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT SUM(A + B), C FROM T WHERE D > (SELECT MAX(E) FROM U)"))
	if !ContainsAggregate(q.Items[0].Expr) {
		t.Fatal("SUM should be detected")
	}
	if ContainsAggregate(q.Items[1].Expr) {
		t.Fatal("C is not an aggregate")
	}
	// Aggregates inside subqueries must not leak out.
	if ContainsAggregate(q.Where) {
		t.Fatal("MAX inside subquery should not count at the outer level")
	}
	refs := CollectColumnRefs(q.Items[0].Expr)
	if len(refs) != 2 {
		t.Fatalf("refs = %v", refs)
	}
	aggs := CollectAggregates(q.Items[0].Expr)
	if len(aggs) != 1 || aggs[0].Name != "SUM" {
		t.Fatalf("aggs = %v", aggs)
	}
}

func TestWalkTableRefs(t *testing.T) {
	q := spec(t, mustParse(t, "SELECT * FROM A JOIN B ON A.X=B.X, C"))
	var names []string
	WalkTableRefs(q.From, func(r TableRef) {
		if tn, ok := r.(*TableName); ok {
			names = append(names, tn.Name)
		}
	})
	if strings.Join(names, " ") != "A B C" {
		t.Fatalf("names = %v", names)
	}
}
