// Package sqlparser implements a lexer and recursive-descent parser for the
// SQL-92 SELECT dialect that the AquaLogic JDBC driver accepts: SELECT
// statements with joins (including outer joins), derived tables, set
// operations, grouping, ordering, scalar and aggregate functions, and the
// full SQL-92 predicate repertoire (BETWEEN, IN, LIKE, IS NULL, EXISTS,
// quantified comparisons), plus `?` parameter markers for prepared
// statements.
//
// The parser is stage one of the paper's three-stage translation: it rejects
// syntactically invalid SQL immediately and produces a typed abstract syntax
// tree; semantic validation happens later, in the translator, once metadata
// and positional context are available (§3.4.3 of the paper).
package sqlparser

import (
	"fmt"

	"repro/internal/qfront"
)

// TokenType identifies a lexical token class.
type TokenType int

// Token types.
const (
	TokEOF TokenType = iota
	TokIdent
	TokQuotedIdent // "Delimited Identifier"
	TokKeyword
	TokString  // 'literal'
	TokInteger // 42
	TokDecimal // 5.6, .1
	TokFloat   // 1e3, 2.5E-1 (approximate numeric)
	TokParam   // ?
	TokOp      // one of the operator spellings below
)

func (t TokenType) String() string {
	switch t {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokQuotedIdent:
		return "delimited identifier"
	case TokKeyword:
		return "keyword"
	case TokString:
		return "string literal"
	case TokInteger:
		return "integer literal"
	case TokDecimal:
		return "decimal literal"
	case TokFloat:
		return "float literal"
	case TokParam:
		return "parameter marker"
	case TokOp:
		return "operator"
	default:
		return fmt.Sprintf("TokenType(%d)", int(t))
	}
}

// Pos is a 1-based source position (shared with the frontend-neutral
// AST in internal/qfront).
type Pos = qfront.Pos

// Token is a lexical token. Text holds the canonical spelling: keywords and
// plain identifiers are uppercased (SQL's case-insensitivity), string
// literal text has quotes stripped and doubled quotes unescaped, delimited
// identifiers keep their exact case.
type Token struct {
	Type TokenType
	Text string
	Pos  Pos
}

// Is reports whether the token is the given keyword.
func (t Token) Is(keyword string) bool {
	return t.Type == TokKeyword && t.Text == keyword
}

// IsOp reports whether the token is the given operator spelling.
func (t Token) IsOp(op string) bool {
	return t.Type == TokOp && t.Text == op
}

func (t Token) String() string {
	switch t.Type {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords is the SQL-92 reserved-word subset the SELECT grammar uses.
// Identifiers matching these (case-insensitively) lex as TokKeyword.
// The map lives in qfront so the canonical AST renderer and this lexer
// can never disagree about what is reserved.
var keywords = qfront.SQLKeywords

// nonReservedInExpr lists keywords that may still appear as function names
// or identifiers in expression position (SQL-92 grants several built-ins
// keyword status but they parse like function calls).
var functionKeywords = map[string]bool{
	"AVG": true, "COUNT": true, "MAX": true, "MIN": true, "SUM": true,
	"UPPER": true, "LOWER": true, "COALESCE": true, "NULLIF": true,
	"CHAR": true, "LEFT": true, "RIGHT": true,
}
