package xquery

import (
	"strings"
)

// Parse reads XQuery source in the dialect this package serializes — the
// dialect the translator generates and the engine executes — and returns
// the query AST. Together with Serialize it gives the engine a textual
// front door: compile-and-execute, the way the paper's DSP server consumes
// the driver's output.
func Parse(src string) (*Query, error) {
	p := &xparser{lx: &xlexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{}
	for p.isName("import") {
		imp, err := p.parseSchemaImport()
		if err != nil {
			return nil, err
		}
		q.Prolog.SchemaImports = append(q.Prolog.SchemaImports, imp)
	}
	body, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, lexErr(p.tok.pos, "unexpected %q after end of query", p.tok.text)
	}
	q.Body = body
	return q, nil
}

// ParseExpr parses a single expression (no prolog).
func ParseExpr(src string) (Expr, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return q.Body, nil
}

type xparser struct {
	lx  *xlexer
	tok xtoken
}

func (p *xparser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *xparser) isName(name string) bool {
	return p.tok.kind == tokName && p.tok.text == name
}

func (p *xparser) isSymbol(sym string) bool {
	return p.tok.kind == tokSymbol && p.tok.text == sym
}

func (p *xparser) acceptName(name string) (bool, error) {
	if p.isName(name) {
		return true, p.advance()
	}
	return false, nil
}

func (p *xparser) expectName(name string) error {
	if !p.isName(name) {
		return lexErr(p.tok.pos, "expected %q, found %q", name, p.tok.text)
	}
	return p.advance()
}

func (p *xparser) expectSymbol(sym string) error {
	if !p.isSymbol(sym) {
		return lexErr(p.tok.pos, "expected %q, found %q", sym, p.tok.text)
	}
	return p.advance()
}

func (p *xparser) expectVar() (string, error) {
	if p.tok.kind != tokVar {
		return "", lexErr(p.tok.pos, "expected variable, found %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *xparser) expectString() (string, error) {
	if p.tok.kind != tokString {
		return "", lexErr(p.tok.pos, "expected string literal, found %q", p.tok.text)
	}
	s := p.tok.text
	return s, p.advance()
}

// parseSchemaImport reads: import schema namespace ns = "uri" at "loc";
func (p *xparser) parseSchemaImport() (SchemaImport, error) {
	if err := p.expectName("import"); err != nil {
		return SchemaImport{}, err
	}
	if err := p.expectName("schema"); err != nil {
		return SchemaImport{}, err
	}
	if err := p.expectName("namespace"); err != nil {
		return SchemaImport{}, err
	}
	if p.tok.kind != tokName {
		return SchemaImport{}, lexErr(p.tok.pos, "expected namespace prefix, found %q", p.tok.text)
	}
	prefix := p.tok.text
	if err := p.advance(); err != nil {
		return SchemaImport{}, err
	}
	if err := p.expectSymbol("="); err != nil {
		return SchemaImport{}, err
	}
	uri, err := p.expectString()
	if err != nil {
		return SchemaImport{}, err
	}
	if err := p.expectName("at"); err != nil {
		return SchemaImport{}, err
	}
	loc, err := p.expectString()
	if err != nil {
		return SchemaImport{}, err
	}
	if err := p.expectSymbol(";"); err != nil {
		return SchemaImport{}, err
	}
	return SchemaImport{Prefix: prefix, Namespace: uri, Location: loc}, nil
}

// parseExprSingle parses one ExprSingle: FLWOR, if, quantified, or an
// operator expression. Keywords are not reserved in XQuery: "for", "let",
// "some" and "every" begin their special forms only when a variable
// follows, and "if" only when a parenthesis follows; otherwise they are
// ordinary path steps.
func (p *xparser) parseExprSingle() (Expr, error) {
	switch {
	case (p.isName("for") || p.isName("let")) && p.nextIsVar():
		return p.parseFLWOR()
	case p.isName("if") && p.nextIsSymbol("("):
		return p.parseIf()
	case (p.isName("some") || p.isName("every")) && p.nextIsVar():
		return p.parseQuantified()
	default:
		return p.parseOr()
	}
}

// nextIsVar peeks one token ahead without consuming input.
func (p *xparser) nextIsVar() bool {
	save := p.lx.off
	t, err := p.lx.next()
	p.lx.off = save
	return err == nil && t.kind == tokVar
}

// nextIsSymbol peeks one token ahead for a symbol.
func (p *xparser) nextIsSymbol(sym string) bool {
	save := p.lx.off
	t, err := p.lx.next()
	p.lx.off = save
	return err == nil && t.kind == tokSymbol && t.text == sym
}

func (p *xparser) parseFLWOR() (Expr, error) {
	f := &FLWOR{}
	for {
		switch {
		case p.isName("for"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				v, err := p.expectVar()
				if err != nil {
					return nil, err
				}
				clause := &For{Var: v}
				if ok, err := p.acceptName("at"); err != nil {
					return nil, err
				} else if ok {
					at, err := p.expectVar()
					if err != nil {
						return nil, err
					}
					clause.At = at
				}
				if err := p.expectName("in"); err != nil {
					return nil, err
				}
				in, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				clause.In = in
				f.Clauses = append(f.Clauses, clause)
				if !p.isSymbol(",") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		case p.isName("let"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				v, err := p.expectVar()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(":="); err != nil {
					return nil, err
				}
				e, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				f.Clauses = append(f.Clauses, &Let{Var: v, Expr: e})
				if !p.isSymbol(",") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		case p.isName("where"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			cond, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, &Where{Cond: cond})
		case p.isName("group"):
			clause, err := p.parseGroupBy()
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, clause)
		case p.isName("order"):
			clause, err := p.parseOrderBy()
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, clause)
		case p.isName("return"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			ret, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			f.Return = ret
			return f, nil
		default:
			return nil, lexErr(p.tok.pos, "expected FLWOR clause or return, found %q", p.tok.text)
		}
	}
}

// parseGroupBy reads the BEA extension:
// group $in as $partition by expr as $k (, expr as $k)*
func (p *xparser) parseGroupBy() (Clause, error) {
	if err := p.expectName("group"); err != nil {
		return nil, err
	}
	inVar, err := p.expectVar()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("as"); err != nil {
		return nil, err
	}
	partVar, err := p.expectVar()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("by"); err != nil {
		return nil, err
	}
	g := &GroupBy{InVar: inVar, PartitionVar: partVar}
	for {
		key, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if err := p.expectName("as"); err != nil {
			return nil, err
		}
		kv, err := p.expectVar()
		if err != nil {
			return nil, err
		}
		g.Keys = append(g.Keys, GroupKey{Expr: key, Var: kv})
		if !p.isSymbol(",") {
			return g, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *xparser) parseOrderBy() (Clause, error) {
	if err := p.expectName("order"); err != nil {
		return nil, err
	}
	if err := p.expectName("by"); err != nil {
		return nil, err
	}
	o := &OrderByClause{}
	for {
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		spec := OrderSpec{Expr: e}
		if ok, err := p.acceptName("descending"); err != nil {
			return nil, err
		} else if ok {
			spec.Descending = true
		} else if ok, err := p.acceptName("ascending"); err != nil {
			return nil, err
		} else if ok {
			// default
		}
		if ok, err := p.acceptName("empty"); err != nil {
			return nil, err
		} else if ok {
			switch {
			case p.isName("greatest"):
				spec.EmptyGreatest = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			case p.isName("least"):
				if err := p.advance(); err != nil {
					return nil, err
				}
			default:
				return nil, lexErr(p.tok.pos, "expected greatest or least after empty")
			}
		}
		o.Specs = append(o.Specs, spec)
		if !p.isSymbol(",") {
			return o, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *xparser) parseIf() (Expr, error) {
	if err := p.expectName("if"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectName("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &If{Cond: cond, Then: then, Else: els}, nil
}

func (p *xparser) parseQuantified() (Expr, error) {
	every := p.isName("every")
	if err := p.advance(); err != nil {
		return nil, err
	}
	v, err := p.expectVar()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("in"); err != nil {
		return nil, err
	}
	in, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &Quantified{Every: every, Var: v, In: in, Satisfies: sat}, nil
}

// parseExpr parses a comma sequence (inside parentheses and enclosed
// expressions).
func (p *xparser) parseExpr() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if !p.isSymbol(",") {
		return first, nil
	}
	seq := &Seq{Items: []Expr{first}}
	for p.isSymbol(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		seq.Items = append(seq.Items, next)
	}
	return seq, nil
}

func (p *xparser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isName("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *xparser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isName("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

var xqValueComps = map[string]bool{"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true}

func (p *xparser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op string
	switch {
	case p.tok.kind == tokSymbol:
		switch p.tok.text {
		case "=", "!=", "<", "<=", ">", ">=":
			op = p.tok.text
		}
	case p.tok.kind == tokName && xqValueComps[p.tok.text]:
		op = p.tok.text
	}
	if op == "" {
		return left, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, Left: left, Right: right}, nil
}

func (p *xparser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("+") || p.isSymbol("-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *xparser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("*") || p.isName("div") || p.isName("mod") || p.isName("idiv") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *xparser) parseUnary() (Expr, error) {
	if p.isSymbol("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", Operand: operand}, nil
	}
	return p.parsePath()
}

// parsePath parses a primary followed by predicates and child steps.
func (p *xparser) parsePath() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// Predicates directly on the primary → Filter.
	if p.isSymbol("[") {
		filter := &Filter{Base: base}
		for p.isSymbol("[") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			filter.Predicates = append(filter.Predicates, pred)
		}
		base = filter
	}
	if !p.isSymbol("/") {
		return base, nil
	}
	var steps []PathStep
	for p.isSymbol("/") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		steps = append(steps, step)
	}
	// A bare-name primary extends into a relative path.
	if rel, ok := base.(*RelPath); ok {
		rel.Steps = append(rel.Steps, steps...)
		return rel, nil
	}
	return &Path{Base: base, Steps: steps}, nil
}

func (p *xparser) parseStep() (PathStep, error) {
	var name string
	switch {
	case p.tok.kind == tokName:
		name = p.tok.text
	case p.isSymbol("*"):
		name = "*"
	default:
		return PathStep{}, lexErr(p.tok.pos, "expected path step, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return PathStep{}, err
	}
	step := PathStep{Name: name}
	for p.isSymbol("[") {
		if err := p.advance(); err != nil {
			return PathStep{}, err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return PathStep{}, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return PathStep{}, err
		}
		step.Predicates = append(step.Predicates, pred)
	}
	return step, nil
}

func (p *xparser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &StringLit{Value: s}, nil

	case tokNumber:
		n := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumberLit{Text: n}, nil

	case tokVar:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Var{Name: v}, nil

	case tokTagOpen:
		return p.parseElementCtor()

	case tokSymbol:
		switch p.tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isSymbol(")") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				return &EmptySeq{}, nil
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return inner, nil
		case ".":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &ContextItem{}, nil
		}

	case tokName:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isSymbol("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []Expr
			if !p.isSymbol(")") {
				for {
					arg, err := p.parseExprSingle()
					if err != nil {
						return nil, err
					}
					args = append(args, arg)
					if !p.isSymbol(",") {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			// xs:* constructor functions parse as casts, matching the
			// translator's output shape.
			if strings.HasPrefix(name, "xs:") && len(args) == 1 {
				return &Cast{Type: name, Operand: args[0]}, nil
			}
			return &FuncCall{Name: name, Args: args}, nil
		}
		// A bare name is a relative child step.
		return &RelPath{Steps: []PathStep{{Name: name}}}, nil
	}
	return nil, lexErr(p.tok.pos, "expected expression, found %q", p.tok.text)
}

// parseElementCtor parses a direct element constructor in expression
// position: the raw form plus a token advance so expression parsing
// resumes after the end tag.
func (p *xparser) parseElementCtor() (Expr, error) {
	ctor, err := p.parseElementCtorRaw()
	if err != nil {
		return nil, err
	}
	return ctor, p.advance()
}

// parseElementCtorRaw parses a direct element constructor. The current
// token is the tag-open holding the element name; content is scanned in
// raw mode. On return the lexer sits just past the end tag and the current
// token is stale (callers in raw-content mode keep scanning; expression
// callers advance).
func (p *xparser) parseElementCtorRaw() (*ElementCtor, error) {
	name := p.tok.text
	// Raw-scan from the lexer's current offset.
	lx := p.lx
	// Skip whitespace to the tag end.
	for lx.off < len(lx.src) && (lx.src[lx.off] == ' ' || lx.src[lx.off] == '\t' || lx.src[lx.off] == '\n' || lx.src[lx.off] == '\r') {
		lx.off++
	}
	if strings.HasPrefix(lx.src[lx.off:], "/>") {
		lx.off += 2
		return &ElementCtor{Name: name}, nil
	}
	if lx.off >= len(lx.src) || lx.src[lx.off] != '>' {
		return nil, lexErr(lx.off, "expected '>' or '/>' in start tag <%s", name)
	}
	lx.off++

	ctor := &ElementCtor{Name: name}
	var text strings.Builder
	flushText := func() {
		if text.Len() == 0 {
			return
		}
		raw := text.String()
		text.Reset()
		// Boundary-space policy "strip": whitespace-only runs between
		// constructors vanish (this is what lets the pretty-printed
		// layout round-trip).
		if strings.TrimSpace(raw) == "" {
			return
		}
		// Braces were unescaped during the scan; entities remain.
		ctor.Content = append(ctor.Content, &TextContent{Text: unescapeEntities(raw)})
	}

	for {
		if lx.off >= len(lx.src) {
			return nil, lexErr(lx.off, "unterminated element constructor <%s>", name)
		}
		switch {
		case strings.HasPrefix(lx.src[lx.off:], "{{"):
			text.WriteByte('{')
			lx.off += 2
		case strings.HasPrefix(lx.src[lx.off:], "}}"):
			text.WriteByte('}')
			lx.off += 2
		case lx.src[lx.off] == '{':
			flushText()
			lx.off++
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			// The current token must be the closing brace; the raw scan
			// resumes from the lexer offset.
			if !p.isSymbol("}") {
				return nil, lexErr(p.tok.pos, "expected '}' in element content, found %q", p.tok.text)
			}
			ctor.Content = append(ctor.Content, &Enclosed{Expr: inner})
		case strings.HasPrefix(lx.src[lx.off:], "</"):
			flushText()
			lx.off += 2
			end := lx.off
			for end < len(lx.src) && (isNameChar(lx.src[end]) || lx.src[end] == ':') {
				end++
			}
			closeName := lx.src[lx.off:end]
			if closeName != name {
				return nil, lexErr(lx.off, "end tag </%s> does not match <%s>", closeName, name)
			}
			lx.off = end
			for lx.off < len(lx.src) && (lx.src[lx.off] == ' ' || lx.src[lx.off] == '\t' || lx.src[lx.off] == '\n') {
				lx.off++
			}
			if lx.off >= len(lx.src) || lx.src[lx.off] != '>' {
				return nil, lexErr(lx.off, "malformed end tag </%s", closeName)
			}
			lx.off++
			return ctor, nil
		case lx.src[lx.off] == '<':
			flushText()
			if err := p.advance(); err != nil { // produces tokTagOpen
				return nil, err
			}
			if p.tok.kind != tokTagOpen {
				return nil, lexErr(p.tok.pos, "expected nested element in content of <%s>", name)
			}
			child, err := p.parseElementCtorRaw()
			if err != nil {
				return nil, err
			}
			ctor.Content = append(ctor.Content, child)
			continue
		default:
			text.WriteByte(lx.src[lx.off])
			lx.off++
		}
	}
}
