package xquery

import (
	"fmt"
	"strings"
)

// The parser half of this package reads the XQuery dialect the translator
// writes (and that the paper's DSP engine accepts): prologs of schema
// imports, FLWOR expressions with the BEA group-by extension, direct
// element constructors with enclosed expressions, path and filter
// expressions, and the fn:/fn-bea:/xs: function namespaces. With it, the
// engine can compile and execute XQuery text, not just ASTs — the shape a
// standalone DSP server has.

// tokKind classifies XQuery tokens.
type tokKind int

const (
	tokEOF      tokKind = iota
	tokName             // NCName or prefixed QName (fn:data, ns0:CUSTOMERS)
	tokVar              // $name
	tokString           // "..." or '...'
	tokNumber           // 42, 5.6, 1e3
	tokSymbol           // punctuation and operators
	tokTagOpen          // <NAME of a direct constructor start tag
	tokTagClose         // </NAME of an end tag
)

type xtoken struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
}

// ParseError is a syntax error in XQuery text.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xquery syntax error at offset %d: %s", e.Offset, e.Msg)
}

func lexErr(pos int, format string, args ...any) error {
	return &ParseError{Offset: pos, Msg: fmt.Sprintf(format, args...)}
}

// xlexer tokenizes XQuery source. Element-content lexing is handled by the
// parser directly (it needs mode switching), so the lexer exposes both a
// token stream and raw-offset access.
type xlexer struct {
	src string
	off int
}

func isNameStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isNameChar(b byte) bool {
	return isNameStart(b) || (b >= '0' && b <= '9') || b == '-' || b == '.'
}

func (lx *xlexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		b := lx.src[lx.off]
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			lx.off++
		case b == '(' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == ':':
			start := lx.off
			lx.off += 2
			depth := 1
			for lx.off < len(lx.src) && depth > 0 {
				if strings.HasPrefix(lx.src[lx.off:], "(:") {
					depth++
					lx.off += 2
				} else if strings.HasPrefix(lx.src[lx.off:], ":)") {
					depth--
					lx.off += 2
				} else {
					lx.off++
				}
			}
			if depth > 0 {
				return lexErr(start, "unterminated comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-char symbols, longest first.
var xquerySymbols = []string{":=", "!=", "<=", ">=", "//", "<", ">", "=",
	"(", ")", "[", "]", "{", "}", ",", ";", "/", "+", "-", "*", "."}

// next returns the next token in expression mode. inTag requests tag-mode
// handling of '<' (the parser sets the distinction itself by peeking).
func (lx *xlexer) next() (xtoken, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return xtoken{}, err
	}
	if lx.off >= len(lx.src) {
		return xtoken{kind: tokEOF, pos: lx.off}, nil
	}
	start := lx.off
	b := lx.src[lx.off]

	switch {
	case b == '$':
		lx.off++
		if lx.off >= len(lx.src) || !isNameStart(lx.src[lx.off]) {
			return xtoken{}, lexErr(start, "expected variable name after $")
		}
		nameStart := lx.off
		for lx.off < len(lx.src) && isNameChar(lx.src[lx.off]) {
			lx.off++
		}
		return xtoken{kind: tokVar, text: lx.src[nameStart:lx.off], pos: start}, nil

	case isNameStart(b):
		for lx.off < len(lx.src) && isNameChar(lx.src[lx.off]) {
			lx.off++
		}
		name := lx.src[start:lx.off]
		// A prefixed QName: prefix:local. Careful not to eat `:=`.
		if lx.off < len(lx.src) && lx.src[lx.off] == ':' &&
			lx.off+1 < len(lx.src) && isNameStart(lx.src[lx.off+1]) {
			lx.off++
			localStart := lx.off
			for lx.off < len(lx.src) && isNameChar(lx.src[lx.off]) {
				lx.off++
			}
			name = name + ":" + lx.src[localStart:lx.off]
		}
		return xtoken{kind: tokName, text: name, pos: start}, nil

	case b >= '0' && b <= '9':
		return lx.lexNumber(start)

	case b == '.' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] >= '0' && lx.src[lx.off+1] <= '9':
		// Leading-dot decimal literal (".5"): per the XQuery grammar a "."
		// followed by a digit starts a DecimalLiteral, not a path step.
		return lx.lexNumber(start)

	case b == '"' || b == '\'':
		return lx.lexString(start, b)

	case b == '<':
		// Distinguish tags from comparison: a tag start is '<' or '</'
		// immediately followed by a name character.
		if lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/' {
			if lx.off+2 < len(lx.src) && isNameStart(lx.src[lx.off+2]) {
				lx.off += 2
				nameStart := lx.off
				for lx.off < len(lx.src) && (isNameChar(lx.src[lx.off]) || lx.src[lx.off] == ':') {
					lx.off++
				}
				return xtoken{kind: tokTagClose, text: lx.src[nameStart:lx.off], pos: start}, nil
			}
		}
		if lx.off+1 < len(lx.src) && isNameStart(lx.src[lx.off+1]) {
			lx.off++
			nameStart := lx.off
			for lx.off < len(lx.src) && (isNameChar(lx.src[lx.off]) || lx.src[lx.off] == ':') {
				lx.off++
			}
			return xtoken{kind: tokTagOpen, text: lx.src[nameStart:lx.off], pos: start}, nil
		}
		// fall through to symbols (comparison operators)
	}

	for _, sym := range xquerySymbols {
		if strings.HasPrefix(lx.src[lx.off:], sym) {
			lx.off += len(sym)
			return xtoken{kind: tokSymbol, text: sym, pos: start}, nil
		}
	}
	return xtoken{}, lexErr(start, "unexpected character %q", rune(b))
}

func (lx *xlexer) lexNumber(start int) (xtoken, error) {
	sawDot, sawExp := false, false
	for lx.off < len(lx.src) {
		b := lx.src[lx.off]
		switch {
		case b >= '0' && b <= '9':
			lx.off++
		case b == '.' && !sawDot && !sawExp:
			sawDot = true
			lx.off++
		case (b == 'e' || b == 'E') && !sawExp:
			sawExp = true
			lx.off++
			if lx.off < len(lx.src) && (lx.src[lx.off] == '+' || lx.src[lx.off] == '-') {
				lx.off++
			}
		default:
			return xtoken{kind: tokNumber, text: lx.src[start:lx.off], pos: start}, nil
		}
	}
	return xtoken{kind: tokNumber, text: lx.src[start:lx.off], pos: start}, nil
}

func (lx *xlexer) lexString(start int, quote byte) (xtoken, error) {
	lx.off++ // opening quote
	var b strings.Builder
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if c == quote {
			// Doubled quote is an escaped quote.
			if lx.off+1 < len(lx.src) && lx.src[lx.off+1] == quote {
				b.WriteByte(quote)
				lx.off += 2
				continue
			}
			lx.off++
			return xtoken{kind: tokString, text: unescapeEntities(b.String()), pos: start}, nil
		}
		b.WriteByte(c)
		lx.off++
	}
	return xtoken{}, lexErr(start, "unterminated string literal")
}

var entityUnescaper = strings.NewReplacer(
	"&lt;", "<", "&gt;", ">", "&amp;", "&", "&quot;", `"`, "&apos;", "'")

func unescapeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityUnescaper.Replace(s)
}
