package xquery

import (
	"strings"
	"testing"
)

func TestSerializeSimpleFLWOR(t *testing.T) {
	// The paper's Example 6 shape: SELECT CUSTOMERID ID FROM CUSTOMERS.
	q := &Query{
		Prolog: Prolog{SchemaImports: []SchemaImport{{
			Prefix:    "ns0",
			Namespace: "ld:TestDataServices/CUSTOMERS",
			Location:  "ld:TestDataServices/schemas/CUSTOMERS.xsd",
		}}},
		Body: &ElementCtor{Name: "RECORDSET", Content: []ElemContent{
			&Enclosed{Expr: &FLWOR{
				Clauses: []Clause{
					&For{Var: "var1FR0", In: Call("ns0:CUSTOMERS")},
				},
				Return: &ElementCtor{Name: "RECORD", Content: []ElemContent{
					TextElem("ID", Call("fn:data", ChildPath("var1FR0", "CUSTOMERID"))),
				}},
			}},
		}},
	}
	out := q.Serialize()
	for _, want := range []string{
		"import schema namespace ns0 =",
		`"ld:TestDataServices/CUSTOMERS" at`,
		`"ld:TestDataServices/schemas/CUSTOMERS.xsd";`,
		"<RECORDSET>",
		"for $var1FR0 in ns0:CUSTOMERS()",
		"return",
		"<RECORD>",
		"<ID>{fn:data($var1FR0/CUSTOMERID)}</ID>",
		"</RECORD>",
		"</RECORDSET>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("serialized query missing %q:\n%s", want, out)
		}
	}
}

func TestSerializeLetWhereOrder(t *testing.T) {
	f := &FLWOR{
		Clauses: []Clause{
			&Let{Var: "tmp", Expr: Call("ns0:T")},
			&For{Var: "x", In: ChildPath("tmp", "RECORD")},
			&Where{Cond: &Binary{Op: ">", Left: ChildPath("x", "ID"), Right: &Cast{Type: "xs:integer", Operand: Num("10")}}},
			&OrderByClause{Specs: []OrderSpec{
				{Expr: ChildPath("x", "NAME")},
				{Expr: ChildPath("x", "ID"), Descending: true},
			}},
		},
		Return: VarRef("x"),
	}
	out := String(f)
	for _, want := range []string{
		"let $tmp := ns0:T()",
		"for $x in $tmp/RECORD",
		"where ($x/ID > xs:integer(10))",
		"order by $x/NAME, $x/ID descending",
		"return",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSerializeGroupBy(t *testing.T) {
	f := &FLWOR{
		Clauses: []Clause{
			&For{Var: "r", In: ChildPath("inter", "RECORD")},
			&GroupBy{InVar: "r", PartitionVar: "var1Partition1", Keys: []GroupKey{
				{Expr: ChildPath("r", "CUSTOMERID"), Var: "var1GB4"},
				{Expr: ChildPath("r", "CUSTOMERNAME"), Var: "var1GB5"},
			}},
		},
		Return: VarRef("var1GB4"),
	}
	out := String(f)
	want := "group $r as $var1Partition1 by $r/CUSTOMERID as $var1GB4, $r/CUSTOMERNAME as $var1GB5"
	if !strings.Contains(out, want) {
		t.Fatalf("missing %q in:\n%s", want, out)
	}
}

func TestSerializeIfThenElse(t *testing.T) {
	e := &If{
		Cond: Call("fn:empty", VarRef("t")),
		Then: &ElementCtor{Name: "A"},
		Else: &ElementCtor{Name: "B"},
	}
	out := String(e)
	for _, want := range []string{"if (fn:empty($t)) then", "<A/>", "else", "<B/>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSerializeFilterPredicate(t *testing.T) {
	// The paper's outer-join filter: ns1:PAYMENTS()[($v/CUSTOMERID = CUSTID)]
	e := &Filter{
		Base: Call("ns1:PAYMENTS"),
		Predicates: []Expr{&Binary{
			Op:    "=",
			Left:  ChildPath("var1FR2", "CUSTOMERID"),
			Right: &RelPath{Steps: []PathStep{{Name: "CUSTID"}}},
		}},
	}
	got := String(e)
	want := "ns1:PAYMENTS()[($var1FR2/CUSTOMERID = CUSTID)]"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestSerializeQuantified(t *testing.T) {
	e := &Quantified{
		Var:       "x",
		In:        Call("ns0:T"),
		Satisfies: &Binary{Op: "=", Left: &RelPath{Steps: []PathStep{{Name: "A"}}}, Right: Num("1")},
	}
	if got := String(e); got != "some $x in ns0:T() satisfies (A = 1)" {
		t.Fatalf("got %q", got)
	}
	e.Every = true
	if got := String(e); !strings.HasPrefix(got, "every ") {
		t.Fatalf("got %q", got)
	}
}

func TestSerializeStringEscaping(t *testing.T) {
	// XQuery string literals double quotes and escape ampersands
	// (entity references are recognized inside literals); '<' is legal.
	if got := String(Str(`say "hi" & <bye>`)); got != `"say ""hi"" &amp; <bye>"` {
		t.Fatalf("got %q", got)
	}
}

func TestSerializeTextContentEscaping(t *testing.T) {
	e := &ElementCtor{Name: "T", Content: []ElemContent{&TextContent{Text: "a{b}<c>"}}}
	got := String(e)
	if got != "<T>a{{b}}&lt;c&gt;</T>" {
		t.Fatalf("got %q", got)
	}
}

func TestSerializeSeqAndEmpty(t *testing.T) {
	if got := String(&Seq{Items: []Expr{Num("1"), Str("x")}}); got != `(1, "x")` {
		t.Fatalf("got %q", got)
	}
	if got := String(&EmptySeq{}); got != "()" {
		t.Fatalf("got %q", got)
	}
}

func TestSerializeUnaryAndContext(t *testing.T) {
	if got := String(&Unary{Op: "-", Operand: Num("5")}); got != "-5" {
		t.Fatalf("got %q", got)
	}
	if got := String(&ContextItem{}); got != "." {
		t.Fatalf("got %q", got)
	}
}

func TestSerializeForAt(t *testing.T) {
	f := &FLWOR{
		Clauses: []Clause{&For{Var: "x", At: "i", In: Call("ns0:T")}},
		Return:  VarRef("i"),
	}
	if !strings.Contains(String(f), "for $x at $i in ns0:T()") {
		t.Fatalf("got:\n%s", String(f))
	}
}

func TestWalkExprsVisitsEverything(t *testing.T) {
	f := &FLWOR{
		Clauses: []Clause{
			&For{Var: "x", In: Call("ns0:T")},
			&Let{Var: "y", Expr: &Filter{Base: Call("ns1:U"), Predicates: []Expr{&Binary{Op: "=", Left: &RelPath{Steps: []PathStep{{Name: "K"}}}, Right: Num("1")}}}},
			&Where{Cond: &Binary{Op: "and", Left: Call("fn:exists", VarRef("y")), Right: Call("fn:not", Call("fn:empty", VarRef("x")))}},
			&GroupBy{InVar: "x", PartitionVar: "p", Keys: []GroupKey{{Expr: ChildPath("x", "G"), Var: "g"}}},
			&OrderByClause{Specs: []OrderSpec{{Expr: ChildPath("x", "O")}}},
		},
		Return: &ElementCtor{Name: "R", Content: []ElemContent{
			&Enclosed{Expr: &If{Cond: Call("fn:empty", VarRef("p")), Then: &EmptySeq{}, Else: &Cast{Type: "xs:string", Operand: VarRef("g")}}},
			&ElementCtor{Name: "S", Content: []ElemContent{&Enclosed{Expr: &Quantified{Var: "q", In: VarRef("p"), Satisfies: &Unary{Op: "-", Operand: Num("1")}}}}},
		}},
	}
	calls := map[string]int{}
	WalkExprs(f, func(e Expr) bool {
		calls[strings.TrimPrefix(strings.TrimPrefix(typeName(e), "*xquery."), "xquery.")]++
		return true
	})
	for _, typ := range []string{"FLWOR", "FuncCall", "Filter", "Binary", "RelPath", "NumberLit", "Var", "GroupBy...no"} {
		_ = typ
	}
	expectAtLeast := map[string]int{
		"FuncCall": 5, "Var": 5, "Binary": 2, "Filter": 1, "If": 1,
		"Cast": 1, "Quantified": 1, "ElementCtor": 2, "EmptySeq": 1, "Unary": 1,
	}
	for typ, n := range expectAtLeast {
		if calls[typ] < n {
			t.Fatalf("WalkExprs visited %s %d times, want >= %d (all: %v)", typ, calls[typ], n, calls)
		}
	}
}

func typeName(e Expr) string {
	switch e.(type) {
	case *FLWOR:
		return "FLWOR"
	case *FuncCall:
		return "FuncCall"
	case *Var:
		return "Var"
	case *Binary:
		return "Binary"
	case *Filter:
		return "Filter"
	case *If:
		return "If"
	case *Cast:
		return "Cast"
	case *Quantified:
		return "Quantified"
	case *ElementCtor:
		return "ElementCtor"
	case *EmptySeq:
		return "EmptySeq"
	case *Unary:
		return "Unary"
	default:
		return "other"
	}
}

func TestFuncName(t *testing.T) {
	p, l := FuncName("fn:data")
	if p != "fn" || l != "data" {
		t.Fatalf("got %q %q", p, l)
	}
	p, l = FuncName("fn-bea:if-empty")
	if p != "fn-bea" || l != "if-empty" {
		t.Fatalf("got %q %q", p, l)
	}
	p, l = FuncName("local")
	if p != "" || l != "local" {
		t.Fatalf("got %q %q", p, l)
	}
}
