package xquery

import (
	"testing"
)

func parseExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestParseLiteralsAndVars(t *testing.T) {
	if e := parseExpr(t, `"hello"`); e.(*StringLit).Value != "hello" {
		t.Fatalf("got %#v", e)
	}
	if e := parseExpr(t, `"it""s"`); e.(*StringLit).Value != `it"s` {
		t.Fatalf("got %#v", e)
	}
	if e := parseExpr(t, `"a &amp; b"`); e.(*StringLit).Value != "a & b" {
		t.Fatalf("entity in literal: %#v", e)
	}
	if e := parseExpr(t, "42"); e.(*NumberLit).Text != "42" {
		t.Fatalf("got %#v", e)
	}
	if e := parseExpr(t, "2.5"); e.(*NumberLit).Text != "2.5" {
		t.Fatalf("got %#v", e)
	}
	if e := parseExpr(t, "$var1FR0"); e.(*Var).Name != "var1FR0" {
		t.Fatalf("got %#v", e)
	}
	if _, ok := parseExpr(t, "()").(*EmptySeq); !ok {
		t.Fatal("() should be EmptySeq")
	}
	if _, ok := parseExpr(t, ".").(*ContextItem); !ok {
		t.Fatal(". should be ContextItem")
	}
}

func TestParseFunctionCallsAndCasts(t *testing.T) {
	e := parseExpr(t, "fn:data($c/CUSTOMERID)")
	f := e.(*FuncCall)
	if f.Name != "fn:data" || len(f.Args) != 1 {
		t.Fatalf("got %#v", f)
	}
	p := f.Args[0].(*Path)
	if p.Base.(*Var).Name != "c" || p.Steps[0].Name != "CUSTOMERID" {
		t.Fatalf("path = %#v", p)
	}
	// xs:* constructor → Cast.
	c := parseExpr(t, "xs:integer(10)").(*Cast)
	if c.Type != "xs:integer" || c.Operand.(*NumberLit).Text != "10" {
		t.Fatalf("cast = %#v", c)
	}
	// fn-bea: names.
	b := parseExpr(t, `fn-bea:if-empty($x, "d")`).(*FuncCall)
	if b.Name != "fn-bea:if-empty" || len(b.Args) != 2 {
		t.Fatalf("got %#v", b)
	}
}

func TestParsePathsAndFilters(t *testing.T) {
	// Relative path from a bare name.
	r := parseExpr(t, "CUSTID").(*RelPath)
	if r.Steps[0].Name != "CUSTID" {
		t.Fatalf("got %#v", r)
	}
	r = parseExpr(t, "A/B/C").(*RelPath)
	if len(r.Steps) != 3 || r.Steps[2].Name != "C" {
		t.Fatalf("got %#v", r)
	}
	// Filter with predicate over a function call.
	f := parseExpr(t, "ns1:PAYMENTS()[($v/CUSTOMERID = CUSTID)]").(*Filter)
	if f.Base.(*FuncCall).Name != "ns1:PAYMENTS" || len(f.Predicates) != 1 {
		t.Fatalf("got %#v", f)
	}
	// Wildcard step.
	p := parseExpr(t, "$x/*").(*Path)
	if p.Steps[0].Name != "*" {
		t.Fatalf("got %#v", p)
	}
	// Step predicates.
	p = parseExpr(t, "$x/RECORD[2]").(*Path)
	if len(p.Steps[0].Predicates) != 1 {
		t.Fatalf("got %#v", p)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	// or < and < comparison < additive < multiplicative
	e := parseExpr(t, "$a + $b * 2 = 7 and $c or $d")
	or := e.(*Binary)
	if or.Op != "or" {
		t.Fatalf("top = %s", or.Op)
	}
	and := or.Left.(*Binary)
	if and.Op != "and" {
		t.Fatalf("left = %s", and.Op)
	}
	cmp := and.Left.(*Binary)
	if cmp.Op != "=" {
		t.Fatalf("cmp = %s", cmp.Op)
	}
	add := cmp.Left.(*Binary)
	if add.Op != "+" {
		t.Fatalf("add = %s", add.Op)
	}
	mul := add.Right.(*Binary)
	if mul.Op != "*" {
		t.Fatalf("mul = %s", mul.Op)
	}
}

func TestParseValueComparisons(t *testing.T) {
	e := parseExpr(t, `$c/CUSTOMERNAME eq "Sue"`).(*Binary)
	if e.Op != "eq" {
		t.Fatalf("op = %s", e.Op)
	}
	e = parseExpr(t, "1 lt 2").(*Binary)
	if e.Op != "lt" {
		t.Fatalf("op = %s", e.Op)
	}
}

func TestParseFLWOR(t *testing.T) {
	src := `for $c in ns0:CUSTOMERS()
		let $t := ns1:PAYMENTS()[($c/CUSTOMERID = CUSTID)]
		where fn:exists($t)
		order by $c/CUSTOMERNAME descending empty greatest, $c/CUSTOMERID
		return $c`
	f := parseExpr(t, src).(*FLWOR)
	if len(f.Clauses) != 4 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
	if f.Clauses[0].(*For).Var != "c" {
		t.Fatal("for var")
	}
	if f.Clauses[1].(*Let).Var != "t" {
		t.Fatal("let var")
	}
	ob := f.Clauses[3].(*OrderByClause)
	if len(ob.Specs) != 2 || !ob.Specs[0].Descending || !ob.Specs[0].EmptyGreatest || ob.Specs[1].Descending {
		t.Fatalf("order specs = %+v", ob.Specs)
	}
	if f.Return.(*Var).Name != "c" {
		t.Fatal("return")
	}
}

func TestParseGroupByExtension(t *testing.T) {
	src := `for $r in $inter/RECORD
		group $r as $part by $r/CUSTID as $k1, $r/CITY as $k2
		return $k1`
	f := parseExpr(t, src).(*FLWOR)
	g := f.Clauses[1].(*GroupBy)
	if g.InVar != "r" || g.PartitionVar != "part" || len(g.Keys) != 2 {
		t.Fatalf("group = %+v", g)
	}
	if g.Keys[1].Var != "k2" {
		t.Fatalf("key 2 = %+v", g.Keys[1])
	}
}

func TestParseIfQuantified(t *testing.T) {
	e := parseExpr(t, "if (fn:empty($t)) then () else $t").(*If)
	if _, ok := e.Then.(*EmptySeq); !ok {
		t.Fatalf("then = %#v", e.Then)
	}
	q := parseExpr(t, "every $x in $vals satisfies ($y > $x)").(*Quantified)
	if !q.Every || q.Var != "x" {
		t.Fatalf("quantified = %+v", q)
	}
}

func TestParseElementConstructors(t *testing.T) {
	e := parseExpr(t, "<RECORD><ID>{fn:data($c/CUSTOMERID)}</ID></RECORD>").(*ElementCtor)
	if e.Name != "RECORD" || len(e.Content) != 1 {
		t.Fatalf("ctor = %+v", e)
	}
	id := e.Content[0].(*ElementCtor)
	if id.Name != "ID" || len(id.Content) != 1 {
		t.Fatalf("id = %+v", id)
	}
	if _, ok := id.Content[0].(*Enclosed); !ok {
		t.Fatalf("content = %#v", id.Content[0])
	}
	// Empty element.
	if el := parseExpr(t, "<NIL/>").(*ElementCtor); el.Name != "NIL" || len(el.Content) != 0 {
		t.Fatalf("empty = %+v", el)
	}
	// Dotted names (the paper's qualified output elements).
	el := parseExpr(t, "<CUSTOMERS.CUSTOMERID>{1}</CUSTOMERS.CUSTOMERID>").(*ElementCtor)
	if el.Name != "CUSTOMERS.CUSTOMERID" {
		t.Fatalf("name = %q", el.Name)
	}
	// Literal text with escaped braces and entities.
	el = parseExpr(t, "<T>a{{b}}&lt;c</T>").(*ElementCtor)
	txt := el.Content[0].(*TextContent)
	if txt.Text != "a{b}<c" {
		t.Fatalf("text = %q", txt.Text)
	}
}

func TestParseWhitespaceOnlyContentStripped(t *testing.T) {
	e := parseExpr(t, "<RECORDSET>\n  {\n    1\n  }\n</RECORDSET>").(*ElementCtor)
	if len(e.Content) != 1 {
		t.Fatalf("content = %d items: %+v", len(e.Content), e.Content)
	}
}

func TestParsePrologAndQuery(t *testing.T) {
	src := `import schema namespace ns0 =
  "ld:TestDataServices/CUSTOMERS" at
  "ld:TestDataServices/schemas/CUSTOMERS.xsd";

<RECORDSET>{for $c in ns0:CUSTOMERS() return $c}</RECORDSET>`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Prolog.SchemaImports) != 1 {
		t.Fatalf("imports = %+v", q.Prolog.SchemaImports)
	}
	imp := q.Prolog.SchemaImports[0]
	if imp.Prefix != "ns0" || imp.Namespace != "ld:TestDataServices/CUSTOMERS" {
		t.Fatalf("import = %+v", imp)
	}
	if _, ok := q.Body.(*ElementCtor); !ok {
		t.Fatalf("body = %T", q.Body)
	}
}

func TestParseComments(t *testing.T) {
	e := parseExpr(t, "(: outer (: nested :) comment :) 42")
	if e.(*NumberLit).Text != "42" {
		t.Fatalf("got %#v", e)
	}
	if _, err := ParseExpr("(: unterminated"); err == nil {
		t.Fatal("unterminated comment should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"for $x",
		"for $x in $y",         // missing return
		"let $x = 1 return $x", // = instead of :=
		"if ($x) then 1",       // missing else
		"<A><B></A>",           // mismatched tags
		"<A>{1</A>",            // unclosed brace
		`"unterminated`,
		"$",
		"fn:data(1",
		"1 +",
		"order by",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

// TestParseSerializeFixedPoint: serializing a parsed expression and
// re-parsing yields an identical serialization. This is the key
// serializer/parser coherence property.
func TestParseSerializeFixedPoint(t *testing.T) {
	srcs := []string{
		`fn:data($c/CUSTOMERID)`,
		`ns1:PAYMENTS()[($v/CUSTOMERID = CUSTID)]`,
		`for $c in ns0:CUSTOMERS() where ($c/CUSTOMERNAME eq "Sue") return <RECORD><ID>{fn:data($c/CUSTOMERID)}</ID></RECORD>`,
		`if (fn:empty($t)) then () else (1, 2, "three")`,
		`some $x in $vals satisfies ($x > xs:integer(10))`,
		`for $r in $i/RECORD group $r as $p by $r/K as $k order by $k descending return fn:count($p)`,
		`fn:string-join((">", fn-bea:if-empty(fn-bea:xml-escape("x"), "&null;")), "")`,
		`-($a + 3) * 2`,
	}
	for _, src := range srcs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		s1 := String(e1)
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", s1, src, err)
		}
		s2 := String(e2)
		if s1 != s2 {
			t.Fatalf("not a fixed point:\n1: %s\n2: %s", s1, s2)
		}
	}
}

func TestParseTagVsComparison(t *testing.T) {
	// '<' followed by space is a comparison, followed by a name is a tag.
	e := parseExpr(t, "$a < $b").(*Binary)
	if e.Op != "<" {
		t.Fatalf("op = %s", e.Op)
	}
	if _, ok := parseExpr(t, "<A/>").(*ElementCtor); !ok {
		t.Fatal("tag not recognized")
	}
	lt := parseExpr(t, "($a <$b)").(*Binary) // '<$' is comparison, not a tag
	if lt.Op != "<" {
		t.Fatalf("op = %s", lt.Op)
	}
}

func TestParseNestedElementsWithSiblingText(t *testing.T) {
	e := parseExpr(t, "<R>before<A>x</A>after</R>").(*ElementCtor)
	if len(e.Content) != 3 {
		t.Fatalf("content = %d", len(e.Content))
	}
	if e.Content[0].(*TextContent).Text != "before" ||
		e.Content[1].(*ElementCtor).Name != "A" ||
		e.Content[2].(*TextContent).Text != "after" {
		t.Fatalf("content = %#v", e.Content)
	}
}
