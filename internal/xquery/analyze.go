package xquery

// analyze.go holds the static-analysis helpers the evaluator's query
// planner builds on: conjunct decomposition of where conditions and
// free-variable analysis of expressions. Both are pure AST walks — no
// evaluation, no metadata access — so they are usable at plan time on
// shared, immutable trees.

// SplitConjuncts flattens a (possibly nested) `and` tree into its conjunct
// list, in left-to-right evaluation order. Non-`and` expressions are their
// own single conjunct.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "and" {
		return append(SplitConjuncts(b.Left), SplitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds an `and` tree from a conjunct list (the inverse of
// SplitConjuncts up to association). An empty list is not representable and
// returns nil.
func JoinConjuncts(conjuncts []Expr) Expr {
	if len(conjuncts) == 0 {
		return nil
	}
	out := conjuncts[0]
	for _, c := range conjuncts[1:] {
		out = &Binary{Op: "and", Left: out, Right: c}
	}
	return out
}

// FreeVars returns the set of variable names referenced by e but not bound
// within it. Binders tracked: FLWOR for/let clauses (including positional
// `at` variables), the BEA group-by extension's key and partition
// variables, and quantified-expression range variables. A group-by
// clause's grouped variable (InVar) is a reference, not a binder.
func FreeVars(e Expr) map[string]bool {
	free := map[string]bool{}
	collectFree(e, nil, free)
	return free
}

// UsesVars reports whether any of the given names occurs free in e. It
// short-cuts the common planner question without materializing the full
// free set for every probe.
func UsesVars(e Expr, names map[string]bool) bool {
	if len(names) == 0 {
		return false
	}
	for v := range FreeVars(e) {
		if names[v] {
			return true
		}
	}
	return false
}

// collectFree accumulates into free the variables of e not present in
// bound. bound is treated as immutable; scopes that add binders clone it.
func collectFree(e Expr, bound map[string]bool, free map[string]bool) {
	switch e := e.(type) {
	case nil:
		return
	case *Var:
		if !bound[e.Name] {
			free[e.Name] = true
		}
	case *StringLit, *NumberLit, *EmptySeq, *ContextItem:
		return
	case *RelPath:
		collectSteps(e.Steps, bound, free)
	case *FuncCall:
		for _, a := range e.Args {
			collectFree(a, bound, free)
		}
	case *Path:
		collectFree(e.Base, bound, free)
		collectSteps(e.Steps, bound, free)
	case *Filter:
		collectFree(e.Base, bound, free)
		for _, p := range e.Predicates {
			collectFree(p, bound, free)
		}
	case *Binary:
		collectFree(e.Left, bound, free)
		collectFree(e.Right, bound, free)
	case *Unary:
		collectFree(e.Operand, bound, free)
	case *If:
		collectFree(e.Cond, bound, free)
		collectFree(e.Then, bound, free)
		collectFree(e.Else, bound, free)
	case *Cast:
		collectFree(e.Operand, bound, free)
	case *Seq:
		for _, it := range e.Items {
			collectFree(it, bound, free)
		}
	case *Quantified:
		collectFree(e.In, bound, free)
		collectFree(e.Satisfies, withBound(bound, e.Var), free)
	case *FLWOR:
		b := cloneBound(bound)
		for _, c := range e.Clauses {
			switch c := c.(type) {
			case *For:
				collectFree(c.In, b, free)
				b[c.Var] = true
				if c.At != "" {
					b[c.At] = true
				}
			case *Let:
				collectFree(c.Expr, b, free)
				b[c.Var] = true
			case *Where:
				collectFree(c.Cond, b, free)
			case *GroupBy:
				for _, k := range c.Keys {
					collectFree(k.Expr, b, free)
				}
				if !b[c.InVar] {
					free[c.InVar] = true
				}
				for _, k := range c.Keys {
					b[k.Var] = true
				}
				b[c.PartitionVar] = true
			case *OrderByClause:
				for _, s := range c.Specs {
					collectFree(s.Expr, b, free)
				}
			}
		}
		collectFree(e.Return, b, free)
	case *ElementCtor:
		for _, c := range e.Content {
			switch c := c.(type) {
			case *Enclosed:
				collectFree(c.Expr, bound, free)
			case *ElementCtor:
				collectFree(c, bound, free)
			}
		}
	}
}

func collectSteps(steps []PathStep, bound, free map[string]bool) {
	for _, s := range steps {
		for _, p := range s.Predicates {
			collectFree(p, bound, free)
		}
	}
}

func cloneBound(bound map[string]bool) map[string]bool {
	out := make(map[string]bool, len(bound)+4)
	for k := range bound {
		out[k] = true
	}
	return out
}

func withBound(bound map[string]bool, name string) map[string]bool {
	out := cloneBound(bound)
	out[name] = true
	return out
}
