// Package xquery defines the abstract syntax of the XQuery dialect the
// SQL-to-XQuery translator generates and the evaluator executes: FLWOR
// expressions (with BEA's group-by extension, which the paper uses to
// translate SQL GROUP BY), element constructors with enclosed expressions,
// path expressions, filter predicates, function calls in the fn: and
// fn-bea: namespaces, conditional and quantified expressions, and casts
// written as constructor functions (xs:integer(...)).
//
// The serializer renders the paper's "patterned" layout: a query prolog of
// schema imports followed by the body, with FLWOR clauses on their own
// lines. Optimization of the emitted XQuery is explicitly out of scope,
// mirroring the paper's non-goal: the DSP engine (here internal/xqeval)
// is responsible for efficient execution.
package xquery

import "strings"

// Query is a complete XQuery: prolog plus body expression.
type Query struct {
	Prolog Prolog
	Body   Expr
}

// Prolog holds the query prolog: the schema imports naming each data
// service function's namespace and .xsd location.
type Prolog struct {
	SchemaImports []SchemaImport
}

// SchemaImport is one `import schema namespace` declaration.
type SchemaImport struct {
	Prefix    string // ns0, ns1, …
	Namespace string // ld:TestDataServices/CUSTOMERS
	Location  string // ld:TestDataServices/schemas/CUSTOMERS.xsd
}

// Expr is an XQuery expression node.
type Expr interface {
	exprNode()
}

// StringLit is a string literal.
type StringLit struct {
	Value string
}

func (*StringLit) exprNode() {}

// NumberLit is a numeric literal; Text preserves the lexical form the
// translator chose (which encodes the literal's XQuery type: integer,
// decimal, or double).
type NumberLit struct {
	Text string
}

func (*NumberLit) exprNode() {}

// EmptySeq is the literal empty sequence `()`.
type EmptySeq struct{}

func (*EmptySeq) exprNode() {}

// Var is a variable reference ($var1FR0).
type Var struct {
	Name string // without the leading $
}

func (*Var) exprNode() {}

// FuncCall calls a named function: a data service function
// (ns0:CUSTOMERS()), a standard function (fn:data), or a BEA extension
// (fn-bea:if-empty).
type FuncCall struct {
	Name string // prefixed name as written, e.g. "fn:data"
	Args []Expr
}

func (*FuncCall) exprNode() {}

// PathStep is one child-axis step with optional predicates.
type PathStep struct {
	Name       string // local element name, or "*"
	Predicates []Expr
}

// Path navigates child steps from a base expression:
// $var1FR0/CUSTOMERID, $tempvar1FR2/RECORD.
type Path struct {
	Base  Expr
	Steps []PathStep
}

func (*Path) exprNode() {}

// Filter applies predicate expressions to a base sequence:
// ns1:PAYMENTS()[($var1FR2/CUSTOMERID = CUSTID)]. Inside a predicate,
// relative paths resolve against the context item.
type Filter struct {
	Base       Expr
	Predicates []Expr
}

func (*Filter) exprNode() {}

// ContextItem is the XPath context item `.`, used in filter predicates.
type ContextItem struct{}

func (*ContextItem) exprNode() {}

// RelPath is a relative path from the context item inside a predicate:
// `CUSTID` in PAYMENTS()[$c/CUSTOMERID = CUSTID].
type RelPath struct {
	Steps []PathStep
}

func (*RelPath) exprNode() {}

// Binary applies a binary operator. Op is the XQuery spelling: general
// comparisons ("=", "!=", "<", "<=", ">", ">="), value comparisons ("eq",
// "ne", "lt", "le", "gt", "ge"), arithmetic ("+", "-", "*", "div", "mod"),
// and logic ("and", "or").
type Binary struct {
	Op    string
	Left  Expr
	Right Expr
}

func (*Binary) exprNode() {}

// Unary is unary minus.
type Unary struct {
	Op      string // "-"
	Operand Expr
}

func (*Unary) exprNode() {}

// If is `if (cond) then … else …`.
type If struct {
	Cond Expr
	Then Expr
	Else Expr
}

func (*If) exprNode() {}

// Cast renders as a constructor function: xs:integer(expr), matching the
// paper's generated casts (xs:integer(10)).
type Cast struct {
	Type    string // xs:integer, xs:decimal, xs:double, xs:string, …
	Operand Expr
}

func (*Cast) exprNode() {}

// Seq is a parenthesized sequence expression: (a, b, c).
type Seq struct {
	Items []Expr
}

func (*Seq) exprNode() {}

// Quantified is `some|every $var in seq satisfies cond`.
type Quantified struct {
	Every     bool
	Var       string
	In        Expr
	Satisfies Expr
}

func (*Quantified) exprNode() {}

// FLWOR is the for-let-where-(group by)-(order by)-return expression.
type FLWOR struct {
	Clauses []Clause
	Return  Expr
}

func (*FLWOR) exprNode() {}

// Clause is one FLWOR clause.
type Clause interface {
	clauseNode()
}

// For binds Var to each item of In. An optional At names a positional
// variable.
type For struct {
	Var string
	At  string // positional variable, empty when absent
	In  Expr
}

func (*For) clauseNode() {}

// Let binds Var to the full result of Expr.
type Let struct {
	Var  string
	Expr Expr
}

func (*Let) clauseNode() {}

// Where filters tuples.
type Where struct {
	Cond Expr
}

func (*Where) clauseNode() {}

// GroupKey is one grouping key of the BEA group-by extension: the key
// expression and the variable the key value is bound to for the return
// clause.
type GroupKey struct {
	Expr Expr
	Var  string
}

// GroupBy is BEA's XQuery group-by extension (the paper's §3.5 uses it to
// translate SQL GROUP BY):
//
//	group $row as $partition by $row/K1 as $k1, $row/K2 as $k2
//
// After the clause, $k1/$k2 bind each distinct key combination and
// $partition binds the sequence of $row values in that group.
type GroupBy struct {
	InVar        string // the tuple variable being grouped
	PartitionVar string // bound to each group's member sequence
	Keys         []GroupKey
}

func (*GroupBy) clauseNode() {}

// OrderSpec is one sort key.
type OrderSpec struct {
	Expr       Expr
	Descending bool
	// EmptyGreatest controls empty-sequence ordering; SQL-92 sorts NULLs
	// high in ascending order per this implementation's convention.
	EmptyGreatest bool
}

// OrderByClause sorts the tuple stream.
type OrderByClause struct {
	Specs []OrderSpec
}

func (*OrderByClause) clauseNode() {}

// ElemContent is content inside an element constructor: nested literal
// elements, literal text, or enclosed expressions.
type ElemContent interface {
	elemContent()
}

// TextContent is literal character content.
type TextContent struct {
	Text string
}

func (*TextContent) elemContent() {}

// Enclosed is an enclosed expression: { expr }.
type Enclosed struct {
	Expr Expr
}

func (*Enclosed) elemContent() {}

// ElementCtor is a direct element constructor. The generated queries build
// RECORDSET/RECORD wrappers and result-column elements with it. Names may
// contain dots (the paper emits <CUSTOMERS.CUSTOMERID> result elements).
type ElementCtor struct {
	Name    string
	Content []ElemContent
}

func (*ElementCtor) exprNode()    {}
func (*ElementCtor) elemContent() {}

// TextElem is the common <NAME>{expr}</NAME> pattern.
func TextElem(name string, e Expr) *ElementCtor {
	return &ElementCtor{Name: name, Content: []ElemContent{&Enclosed{Expr: e}}}
}

// VarRef is shorthand for a variable reference expression.
func VarRef(name string) *Var { return &Var{Name: name} }

// ChildPath is shorthand for $var/step.
func ChildPath(varName string, steps ...string) *Path {
	p := &Path{Base: VarRef(varName)}
	for _, s := range steps {
		p.Steps = append(p.Steps, PathStep{Name: s})
	}
	return p
}

// Call is shorthand for a function call.
func Call(name string, args ...Expr) *FuncCall {
	return &FuncCall{Name: name, Args: args}
}

// Str is shorthand for a string literal.
func Str(s string) *StringLit { return &StringLit{Value: s} }

// Num is shorthand for a numeric literal.
func Num(text string) *NumberLit { return &NumberLit{Text: text} }

// WalkExprs visits e and its sub-expressions depth-first, including FLWOR
// clause expressions and element-constructor content. It is used by tests
// and by the wrapper generator to inspect generated trees.
func WalkExprs(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *FuncCall:
		for _, a := range e.Args {
			WalkExprs(a, fn)
		}
	case *Path:
		WalkExprs(e.Base, fn)
		for _, s := range e.Steps {
			for _, p := range s.Predicates {
				WalkExprs(p, fn)
			}
		}
	case *Filter:
		WalkExprs(e.Base, fn)
		for _, p := range e.Predicates {
			WalkExprs(p, fn)
		}
	case *Binary:
		WalkExprs(e.Left, fn)
		WalkExprs(e.Right, fn)
	case *Unary:
		WalkExprs(e.Operand, fn)
	case *If:
		WalkExprs(e.Cond, fn)
		WalkExprs(e.Then, fn)
		WalkExprs(e.Else, fn)
	case *Cast:
		WalkExprs(e.Operand, fn)
	case *Seq:
		for _, it := range e.Items {
			WalkExprs(it, fn)
		}
	case *Quantified:
		WalkExprs(e.In, fn)
		WalkExprs(e.Satisfies, fn)
	case *FLWOR:
		for _, c := range e.Clauses {
			switch c := c.(type) {
			case *For:
				WalkExprs(c.In, fn)
			case *Let:
				WalkExprs(c.Expr, fn)
			case *Where:
				WalkExprs(c.Cond, fn)
			case *GroupBy:
				for _, k := range c.Keys {
					WalkExprs(k.Expr, fn)
				}
			case *OrderByClause:
				for _, s := range c.Specs {
					WalkExprs(s.Expr, fn)
				}
			}
		}
		WalkExprs(e.Return, fn)
	case *ElementCtor:
		for _, c := range e.Content {
			switch c := c.(type) {
			case *Enclosed:
				WalkExprs(c.Expr, fn)
			case *ElementCtor:
				WalkExprs(c, fn)
			}
		}
	}
}

// FuncName splits a prefixed function name into prefix and local parts.
func FuncName(name string) (prefix, local string) {
	if i := strings.LastIndex(name, ":"); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}
