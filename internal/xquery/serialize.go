package xquery

import (
	"fmt"
	"strings"
)

// Serialize renders the query as XQuery source in the paper's layout:
// schema imports first, then the body with FLWOR clauses on separate lines
// and nested constructors indented.
func (q *Query) Serialize() string {
	var w writer
	for _, imp := range q.Prolog.SchemaImports {
		w.linef("import schema namespace %s =", imp.Prefix)
		w.indent++
		w.linef("%q at", imp.Namespace)
		w.linef("%q;", imp.Location)
		w.indent--
	}
	if len(q.Prolog.SchemaImports) > 0 {
		w.blank()
	}
	writeExpr(&w, q.Body)
	w.flushLine()
	return w.b.String()
}

// String renders a single expression (used in tests and error messages).
func String(e Expr) string {
	var w writer
	writeExpr(&w, e)
	w.flushLine()
	return strings.TrimRight(w.b.String(), "\n")
}

// writer accumulates pretty-printed output with indentation.
type writer struct {
	b      strings.Builder
	indent int
	line   strings.Builder
}

func (w *writer) emit(s string) {
	if w.line.Len() == 0 && s != "" {
		for i := 0; i < w.indent; i++ {
			w.line.WriteString("  ")
		}
	}
	w.line.WriteString(s)
}

func (w *writer) emitf(format string, args ...any) {
	w.emit(fmt.Sprintf(format, args...))
}

func (w *writer) flushLine() {
	if w.line.Len() > 0 {
		w.b.WriteString(w.line.String())
		w.b.WriteByte('\n')
		w.line.Reset()
	}
}

func (w *writer) linef(format string, args ...any) {
	w.emitf(format, args...)
	w.flushLine()
}

func (w *writer) blank() {
	w.flushLine()
	w.b.WriteByte('\n')
}

func writeExpr(w *writer, e Expr) {
	switch e := e.(type) {
	case *StringLit:
		w.emit(quoteString(e.Value))
	case *NumberLit:
		w.emit(e.Text)
	case *EmptySeq:
		w.emit("()")
	case *Var:
		w.emit("$" + e.Name)
	case *ContextItem:
		w.emit(".")
	case *RelPath:
		writeSteps(w, e.Steps, false)
	case *FuncCall:
		w.emit(e.Name + "(")
		for i, a := range e.Args {
			if i > 0 {
				w.emit(", ")
			}
			writeExpr(w, a)
		}
		w.emit(")")
	case *Path:
		writeBase(w, e.Base)
		writeSteps(w, e.Steps, true)
	case *Filter:
		writeBase(w, e.Base)
		for _, p := range e.Predicates {
			w.emit("[")
			writeExpr(w, p)
			w.emit("]")
		}
	case *Binary:
		w.emit("(")
		writeExpr(w, e.Left)
		w.emit(" " + e.Op + " ")
		writeExpr(w, e.Right)
		w.emit(")")
	case *Unary:
		w.emit(e.Op)
		writeExpr(w, e.Operand)
	case *If:
		w.emit("if (")
		writeExpr(w, e.Cond)
		w.emit(") then")
		w.flushLine()
		w.indent++
		writeExpr(w, e.Then)
		w.flushLine()
		w.indent--
		w.linef("else")
		w.indent++
		writeExpr(w, e.Else)
		w.flushLine()
		w.indent--
	case *Cast:
		w.emit(e.Type + "(")
		writeExpr(w, e.Operand)
		w.emit(")")
	case *Seq:
		w.emit("(")
		for i, it := range e.Items {
			if i > 0 {
				w.emit(", ")
			}
			writeExpr(w, it)
		}
		w.emit(")")
	case *Quantified:
		if e.Every {
			w.emit("every ")
		} else {
			w.emit("some ")
		}
		w.emit("$" + e.Var + " in ")
		writeExpr(w, e.In)
		w.emit(" satisfies ")
		writeExpr(w, e.Satisfies)
	case *FLWOR:
		writeFLWOR(w, e)
	case *ElementCtor:
		writeElement(w, e)
	default:
		w.emitf("(: unknown expression %T :)", e)
	}
}

// writeBase renders the base of a path or filter, parenthesizing
// expression forms the XQuery grammar does not allow bare in that position
// (FLWOR, conditionals, constructors, unary minus).
func writeBase(w *writer, e Expr) {
	switch e.(type) {
	case *FLWOR, *If, *Quantified, *ElementCtor, *Unary:
		w.emit("(")
		writeExpr(w, e)
		w.emit(")")
	default:
		writeExpr(w, e)
	}
}

func writeSteps(w *writer, steps []PathStep, leadingSlash bool) {
	for i, s := range steps {
		if leadingSlash || i > 0 {
			w.emit("/")
		}
		w.emit(s.Name)
		for _, p := range s.Predicates {
			w.emit("[")
			writeExpr(w, p)
			w.emit("]")
		}
	}
}

func writeFLWOR(w *writer, f *FLWOR) {
	w.flushLine()
	for _, c := range f.Clauses {
		switch c := c.(type) {
		case *For:
			w.emit("for $" + c.Var)
			if c.At != "" {
				w.emit(" at $" + c.At)
			}
			w.emit(" in ")
			writeExpr(w, c.In)
			w.flushLine()
		case *Let:
			w.emit("let $" + c.Var + " := ")
			writeExpr(w, c.Expr)
			w.flushLine()
		case *Where:
			w.emit("where ")
			writeExpr(w, c.Cond)
			w.flushLine()
		case *GroupBy:
			w.emitf("group $%s as $%s by ", c.InVar, c.PartitionVar)
			for i, k := range c.Keys {
				if i > 0 {
					w.emit(", ")
				}
				writeExpr(w, k.Expr)
				w.emit(" as $" + k.Var)
			}
			w.flushLine()
		case *OrderByClause:
			w.emit("order by ")
			for i, s := range c.Specs {
				if i > 0 {
					w.emit(", ")
				}
				writeExpr(w, s.Expr)
				if s.Descending {
					w.emit(" descending")
				}
				if s.EmptyGreatest {
					w.emit(" empty greatest")
				}
			}
			w.flushLine()
		}
	}
	w.linef("return")
	w.indent++
	writeExpr(w, f.Return)
	w.flushLine()
	w.indent--
}

func writeElement(w *writer, e *ElementCtor) {
	// Single enclosed expression or single text renders inline:
	// <ID>{fn:data($v/CUSTOMERID)}</ID>
	if len(e.Content) == 1 {
		switch c := e.Content[0].(type) {
		case *Enclosed:
			if inlineable(c.Expr) {
				w.emit("<" + e.Name + ">{")
				writeExpr(w, c.Expr)
				w.emit("}</" + e.Name + ">")
				w.flushLine()
				return
			}
		case *TextContent:
			w.emit("<" + e.Name + ">" + escapeText(c.Text) + "</" + e.Name + ">")
			w.flushLine()
			return
		}
	}
	if len(e.Content) == 0 {
		w.emit("<" + e.Name + "/>")
		w.flushLine()
		return
	}
	// Mixed content (text among the children): every byte outside an
	// enclosed expression is significant, so pretty-printing would change
	// the text nodes on re-parse. Render verbatim, inline.
	for _, c := range e.Content {
		if _, ok := c.(*TextContent); ok {
			writeElementInline(w, e)
			w.flushLine()
			return
		}
	}
	w.linef("<%s>", e.Name)
	w.indent++
	for _, c := range e.Content {
		switch c := c.(type) {
		case *TextContent:
			w.linef("%s", escapeText(c.Text))
		case *ElementCtor:
			writeElement(w, c)
		case *Enclosed:
			w.linef("{")
			w.indent++
			writeExpr(w, c.Expr)
			w.flushLine()
			w.indent--
			w.linef("}")
		}
	}
	w.indent--
	w.linef("</%s>", e.Name)
}

// writeElementInline renders an element without inserting any whitespace
// outside enclosed expressions — the only faithful form for mixed
// content, where inter-child bytes are text.
func writeElementInline(w *writer, e *ElementCtor) {
	if len(e.Content) == 0 {
		w.emit("<" + e.Name + "/>")
		return
	}
	w.emit("<" + e.Name + ">")
	for _, c := range e.Content {
		switch c := c.(type) {
		case *TextContent:
			w.emit(escapeText(c.Text))
		case *ElementCtor:
			writeElementInline(w, c)
		case *Enclosed:
			w.emit("{")
			writeExpr(w, c.Expr)
			w.emit("}")
		}
	}
	w.emit("</" + e.Name + ">")
}

// inlineable reports whether an enclosed expression is compact enough to
// render on one line inside its element.
func inlineable(e Expr) bool {
	switch e := e.(type) {
	case *FLWOR, *If, *ElementCtor:
		return false
	case *Seq:
		for _, it := range e.Items {
			if !inlineable(it) {
				return false
			}
		}
		return true
	case *FuncCall:
		for _, a := range e.Args {
			if !inlineable(a) {
				return false
			}
		}
		return true
	case *Binary:
		return inlineable(e.Left) && inlineable(e.Right)
	case *Filter:
		if !inlineable(e.Base) {
			return false
		}
		for _, p := range e.Predicates {
			if !inlineable(p) {
				return false
			}
		}
		return true
	case *Cast:
		return inlineable(e.Operand)
	default:
		return true
	}
}

func quoteString(s string) string {
	// XQuery recognizes predefined entity references inside string
	// literals, so a literal ampersand must be written as &amp;; the
	// quote character is escaped by doubling.
	s = strings.ReplaceAll(s, "&", "&amp;")
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func escapeText(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", "{", "{{", "}", "}}").Replace(s)
}
