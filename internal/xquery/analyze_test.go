package xquery

import (
	"reflect"
	"sort"
	"testing"
)

func sortedFree(e Expr) []string {
	var out []string
	for v := range FreeVars(e) {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func TestSplitConjuncts(t *testing.T) {
	a := &Var{Name: "a"}
	b := &Var{Name: "b"}
	c := &Var{Name: "c"}
	tree := &Binary{Op: "and", Left: &Binary{Op: "and", Left: a, Right: b}, Right: c}
	got := SplitConjuncts(tree)
	if len(got) != 3 || got[0] != Expr(a) || got[1] != Expr(b) || got[2] != Expr(c) {
		t.Fatalf("SplitConjuncts = %v, want [a b c]", got)
	}
	// `or` is not a conjunction boundary.
	or := &Binary{Op: "or", Left: a, Right: b}
	if got := SplitConjuncts(or); len(got) != 1 || got[0] != Expr(or) {
		t.Fatalf("SplitConjuncts(or) = %v, want the or node itself", got)
	}
	// Round trip through JoinConjuncts preserves the conjunct list.
	if got := SplitConjuncts(JoinConjuncts([]Expr{a, b, c})); len(got) != 3 {
		t.Fatalf("round trip = %v, want 3 conjuncts", got)
	}
	if JoinConjuncts(nil) != nil {
		t.Fatal("JoinConjuncts(nil) should be nil")
	}
}

func TestFreeVarsSimple(t *testing.T) {
	e := &Binary{Op: "=", Left: ChildPath("c", "CUSTOMERID"), Right: ChildPath("p", "CUSTID")}
	if got := sortedFree(e); !reflect.DeepEqual(got, []string{"c", "p"}) {
		t.Fatalf("FreeVars = %v, want [c p]", got)
	}
	if got := sortedFree(&RelPath{Steps: []PathStep{{Name: "CUSTID"}}}); len(got) != 0 {
		t.Fatalf("RelPath has no free vars, got %v", got)
	}
}

func TestFreeVarsFLWORBinders(t *testing.T) {
	// for $x at $i in $src let $y := $x/A where $y eq $outer return ($x, $i, $y)
	f := &FLWOR{
		Clauses: []Clause{
			&For{Var: "x", At: "i", In: VarRef("src")},
			&Let{Var: "y", Expr: ChildPath("x", "A")},
			&Where{Cond: &Binary{Op: "eq", Left: VarRef("y"), Right: VarRef("outer")}},
		},
		Return: &Seq{Items: []Expr{VarRef("x"), VarRef("i"), VarRef("y")}},
	}
	if got := sortedFree(f); !reflect.DeepEqual(got, []string{"outer", "src"}) {
		t.Fatalf("FreeVars(flwor) = %v, want [outer src]", got)
	}
}

func TestFreeVarsGroupByAndQuantified(t *testing.T) {
	// for $r in $src group $r as $part by $r/K as $k return ($k, $part)
	f := &FLWOR{
		Clauses: []Clause{
			&For{Var: "r", In: VarRef("src")},
			&GroupBy{InVar: "r", PartitionVar: "part",
				Keys: []GroupKey{{Expr: ChildPath("r", "K"), Var: "k"}}},
		},
		Return: &Seq{Items: []Expr{VarRef("k"), VarRef("part")}},
	}
	if got := sortedFree(f); !reflect.DeepEqual(got, []string{"src"}) {
		t.Fatalf("FreeVars(group by) = %v, want [src]", got)
	}
	// The grouped variable is a reference when nothing binds it.
	g := &FLWOR{
		Clauses: []Clause{&GroupBy{InVar: "loose", PartitionVar: "p",
			Keys: []GroupKey{{Expr: VarRef("loose"), Var: "k"}}}},
		Return: VarRef("k"),
	}
	if got := sortedFree(g); !reflect.DeepEqual(got, []string{"loose"}) {
		t.Fatalf("FreeVars(unbound group in) = %v, want [loose]", got)
	}
	q := &Quantified{Var: "v", In: VarRef("seq"),
		Satisfies: &Binary{Op: "eq", Left: VarRef("v"), Right: VarRef("limit")}}
	if got := sortedFree(q); !reflect.DeepEqual(got, []string{"limit", "seq"}) {
		t.Fatalf("FreeVars(quantified) = %v, want [limit seq]", got)
	}
}

func TestFreeVarsScopesDoNotLeak(t *testing.T) {
	// A variable bound in a nested FLWOR stays free outside it.
	inner := &FLWOR{
		Clauses: []Clause{&For{Var: "n", In: VarRef("src")}},
		Return:  VarRef("n"),
	}
	outer := &Seq{Items: []Expr{inner, VarRef("n")}}
	if got := sortedFree(outer); !reflect.DeepEqual(got, []string{"n", "src"}) {
		t.Fatalf("FreeVars = %v, want [n src]", got)
	}
}

func TestFreeVarsElementAndFilter(t *testing.T) {
	e := &ElementCtor{Name: "RECORD", Content: []ElemContent{
		&ElementCtor{Name: "A", Content: []ElemContent{&Enclosed{Expr: ChildPath("row", "A")}}},
		&Enclosed{Expr: VarRef("extra")},
	}}
	if got := sortedFree(e); !reflect.DeepEqual(got, []string{"extra", "row"}) {
		t.Fatalf("FreeVars(ctor) = %v, want [extra row]", got)
	}
	f := &Filter{Base: VarRef("base"), Predicates: []Expr{
		&Binary{Op: "=", Left: &RelPath{Steps: []PathStep{{Name: "CUSTID"}}}, Right: ChildPath("c", "ID")},
	}}
	if got := sortedFree(f); !reflect.DeepEqual(got, []string{"base", "c"}) {
		t.Fatalf("FreeVars(filter) = %v, want [base c]", got)
	}
}

func TestUsesVars(t *testing.T) {
	e := ChildPath("x", "A")
	if !UsesVars(e, map[string]bool{"x": true}) {
		t.Fatal("UsesVars should see x")
	}
	if UsesVars(e, map[string]bool{"y": true}) {
		t.Fatal("UsesVars should not see y")
	}
	if UsesVars(e, nil) {
		t.Fatal("UsesVars with empty set is false")
	}
}
