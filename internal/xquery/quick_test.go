package xquery

import (
	"testing"
	"testing/quick"
)

// Property: the XQuery parser terminates without panicking on arbitrary
// input.
func TestQuickXQueryParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: fragment soup assembled from dialect pieces never panics, and
// whatever parses re-serializes to a fixed point.
func TestQuickXQueryFragmentSoup(t *testing.T) {
	fragments := []string{
		"for", "let", "where", "order by", "group", "return", "in", "as", "by",
		"$x", "$y", "$part", ":=", "if", "then", "else", "some", "every",
		"satisfies", "and", "or", "div", "mod", "eq", "ne", "descending",
		"fn:data", "fn:count", "ns0:CUSTOMERS", "xs:integer", "fn-bea:if-empty",
		"(", ")", "[", "]", "{", "}", ",", "/", "+", "-", "*", "=", "<", ">",
		`"str"`, "42", "2.5", ".", "<A>", "</A>", "<A/>", "CUSTID", "RECORD",
	}
	parsed := 0
	f := func(seed []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		src := ""
		for _, b := range seed {
			src += fragments[int(b)%len(fragments)] + " "
		}
		q, err := Parse(src)
		if err != nil {
			return true
		}
		parsed++
		s1 := (&Query{Prolog: q.Prolog, Body: q.Body}).Serialize()
		q2, err := Parse(s1)
		if err != nil {
			t.Logf("re-parse failed for %q → %q: %v", src, s1, err)
			return false
		}
		s2 := (&Query{Prolog: q2.Prolog, Body: q2.Body}).Serialize()
		return s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// Property: string literals round-trip through quoting and parsing.
func TestQuickStringLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		e, err := ParseExpr(String(Str(s)))
		if err != nil {
			return false
		}
		lit, ok := e.(*StringLit)
		return ok && lit.Value == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
