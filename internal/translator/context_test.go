package translator

import (
	"testing"

	"repro/internal/sqlparser"
)

// TestContextsFigure4 reproduces the paper's Figure 4: a doubly nested
// query has three contexts — innermost on CUSTOMERS, an intermediate query
// over that view, and the outermost query — under the CTX0 marker root.
func TestContextsFigure4(t *testing.T) {
	stmt, err := sqlparser.Parse(`
		SELECT * FROM (
			SELECT ID FROM (
				SELECT CUSTOMERID ID FROM CUSTOMERS
			) AS INNERV
		) AS OUTERV`)
	if err != nil {
		t.Fatal(err)
	}
	root := CaptureContexts(stmt)
	if root.ID != 0 || root.Spec != nil {
		t.Fatalf("marker root = %+v", root)
	}
	if got := root.Count(); got != 3 {
		t.Fatalf("contexts = %d, want 3 (Figure 4)", got)
	}
	// The outermost query is CTX1; depth increases inward.
	outer := root.Children[0]
	if outer.ID != 1 || outer.Depth() != 1 {
		t.Fatalf("outer = id %d depth %d", outer.ID, outer.Depth())
	}
	mid := outer.Children[0]
	inner := mid.Children[0]
	if mid.ID != 2 || inner.ID != 3 {
		t.Fatalf("ids = %d, %d", mid.ID, inner.ID)
	}
	if inner.Depth() != 3 {
		t.Fatalf("inner depth = %d", inner.Depth())
	}
	if outer.SubqueryCount != 1 || mid.SubqueryCount != 1 || inner.SubqueryCount != 0 {
		t.Fatalf("subquery counts = %d, %d, %d", outer.SubqueryCount, mid.SubqueryCount, inner.SubqueryCount)
	}
}

func TestContextsCaptureAggregates(t *testing.T) {
	stmt, err := sqlparser.Parse("SELECT COUNT(*) FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	root := CaptureContexts(stmt)
	if !root.Children[0].HasAggregates {
		t.Fatal("aggregate presence must be captured in stage one")
	}
	stmt, _ = sqlparser.Parse("SELECT CITY FROM CUSTOMERS GROUP BY CITY HAVING MAX(CUSTOMERID) > 1")
	root = CaptureContexts(stmt)
	if !root.Children[0].HasAggregates {
		t.Fatal("HAVING aggregates must be captured")
	}
	stmt, _ = sqlparser.Parse("SELECT CITY FROM CUSTOMERS")
	root = CaptureContexts(stmt)
	if root.Children[0].HasAggregates {
		t.Fatal("no aggregates here")
	}
}

func TestContextsPredicateSubqueries(t *testing.T) {
	stmt, err := sqlparser.Parse(`
		SELECT CUSTOMERID FROM CUSTOMERS
		WHERE EXISTS (SELECT 1 FROM PAYMENTS)
		  AND CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS)
		  AND CUSTOMERID > ANY (SELECT CUSTID FROM PAYMENTS)
		  AND CITY = (SELECT CITY FROM CUSTOMERS C2)`)
	if err != nil {
		t.Fatal(err)
	}
	root := CaptureContexts(stmt)
	outer := root.Children[0]
	if outer.SubqueryCount != 4 {
		t.Fatalf("subqueries = %d, want 4", outer.SubqueryCount)
	}
	if got := root.Count(); got != 5 {
		t.Fatalf("contexts = %d, want 5", got)
	}
}

func TestContextsSetOperations(t *testing.T) {
	stmt, err := sqlparser.Parse("SELECT A FROM T UNION SELECT B FROM U INTERSECT SELECT C FROM V")
	if err != nil {
		t.Fatal(err)
	}
	root := CaptureContexts(stmt)
	// Three SELECT blocks, all direct children of the marker (set ops do
	// not nest scopes).
	if len(root.Children) != 3 {
		t.Fatalf("children = %d", len(root.Children))
	}
	if got := root.Count(); got != 3 {
		t.Fatalf("contexts = %d", got)
	}
}

func TestContextsJoinConditionSubquery(t *testing.T) {
	stmt, err := sqlparser.Parse(`
		SELECT 1 FROM CUSTOMERS C JOIN PAYMENTS P
		ON C.CUSTOMERID = P.CUSTID AND P.PAYMENT > (SELECT 0 FROM PAYMENTS X)`)
	if err != nil {
		t.Fatal(err)
	}
	root := CaptureContexts(stmt)
	if root.Count() != 2 {
		t.Fatalf("contexts = %d, want 2", root.Count())
	}
}

func TestContextFind(t *testing.T) {
	stmt, _ := sqlparser.Parse("SELECT * FROM (SELECT A FROM T) AS D")
	root := CaptureContexts(stmt)
	outerSpec := stmt.Body.(*sqlparser.QuerySpec)
	if ctx := root.Find(outerSpec); ctx == nil || ctx.ID != 1 {
		t.Fatalf("Find(outer) = %+v", ctx)
	}
	innerSpec := outerSpec.From[0].(*sqlparser.DerivedTable).Query.Body.(*sqlparser.QuerySpec)
	if ctx := root.Find(innerSpec); ctx == nil || ctx.ID != 2 {
		t.Fatalf("Find(inner) = %+v", ctx)
	}
	if root.Find(&sqlparser.QuerySpec{}) != nil {
		t.Fatal("Find of unknown spec should be nil")
	}
}
