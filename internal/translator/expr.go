package translator

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/qfront"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// genExpr translates a SQL value or boolean expression into XQuery,
// inferring its datatype bottom-up (§3.5 v). sc is the column-resolution
// scope; agg is non-nil when translating in a grouped query's projection,
// HAVING or ORDER BY.
func (g *generator) genExpr(e qfront.Expr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	// In a grouped context, an expression that textually matches a whole
	// GROUP BY key resolves to that key's variable (SQL-92's derivability
	// rule for expression keys, e.g. GROUP BY UPPER(CITY) with
	// SELECT UPPER(CITY)).
	if agg != nil {
		if _, isRef := e.(*qfront.ColumnRef); !isRef {
			if xe, ti, ok := agg.matchKeyText(e); ok {
				return xe, ti, nil
			}
		}
	}
	switch e := e.(type) {
	case *qfront.ColumnRef:
		if agg != nil {
			return g.resolveGroupedColumn(e, agg)
		}
		r, err := sc.resolve(e)
		if err != nil {
			return nil, typeInfo{}, err
		}
		return r.Expr, typeInfo{SQL: r.Col.SQL, X: r.Col.Type, Nullable: r.Col.Nullable,
			Precision: r.Col.Precision, Scale: r.Col.Scale}, nil

	case *qfront.Literal:
		return genLiteral(e)

	case *qfront.Param:
		// Parameters surface as external variables $p1…$pN; their types
		// are noted when a comparison or arithmetic context reveals one.
		return xquery.VarRef(fmt.Sprintf("p%d", e.Index)), tUnknown, nil

	case *qfront.UnaryExpr:
		return g.genUnary(e, sc, agg)

	case *qfront.BinaryExpr:
		return g.genBinary(e, sc, agg)

	case *qfront.FuncCall:
		if e.IsAggregate() {
			if agg == nil {
				return nil, typeInfo{}, semErr(e.Pos, "aggregate function %s is not allowed here", e.Name)
			}
			ctxID := 0 // names inside aggregates reuse the grouped zone
			return g.genAggregate(e, agg, ctxID)
		}
		return g.genScalarFunc(e, sc, agg)

	case *qfront.CaseExpr:
		return g.genCase(e, sc, agg)

	case *qfront.CastExpr:
		arg, argT, err := g.genExpr(e.Operand, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
		target := typeFromTypeName(e.Type)
		target.Nullable = argT.Nullable
		inner := atomized(typedExpr{E: arg, T: argT})
		// Element content is untypedAtomic at runtime; establish the
		// operand's declared type first so SQL's value conversions apply
		// (CAST(decimal AS INTEGER) truncates; a direct untyped→integer
		// cast of "100.50" would be a dynamic error).
		if argT.X != xdm.TypeUntyped && argT.X != target.X {
			inner = castTo(inner, argT.X)
		}
		return castTo(inner, target.X), target, nil

	case *qfront.BetweenExpr:
		return g.genBetween(e, sc, agg)

	case *qfront.InExpr:
		return g.genIn(e, sc, agg)

	case *qfront.ExistsExpr:
		rows, _, err := g.genSelectStmt(e.Subquery, sc)
		if err != nil {
			return nil, typeInfo{}, err
		}
		return xquery.Call("fn:exists", rows), tBoolean, nil

	case *qfront.LikeExpr:
		return g.genLike(e, sc, agg)

	case *qfront.IsNullExpr:
		operand, t, err := g.genExpr(e.Operand, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
		test := xquery.Call("fn:empty", xquery.Call("fn:data", operand))
		_ = t
		if e.Not {
			return xquery.Call("fn:not", test), tBoolean, nil
		}
		return test, tBoolean, nil

	case *qfront.SubqueryExpr:
		return g.genScalarSubquery(e, sc)

	case *qfront.QuantifiedExpr:
		return g.genQuantified(e, sc, agg)

	default:
		return nil, typeInfo{}, semErr(e.Position(), "unsupported expression %T", e)
	}
}

func genLiteral(l *qfront.Literal) (xquery.Expr, typeInfo, error) {
	switch l.Type {
	case qfront.LitInteger:
		return xquery.Num(l.Text), tInteger, nil
	case qfront.LitDecimal:
		return xquery.Num(l.Text), tDecimal, nil
	case qfront.LitFloat:
		return xquery.Num(l.Text), tDouble, nil
	case qfront.LitString:
		return xquery.Str(l.Text), tVarchar, nil
	case qfront.LitBoolean:
		if l.Text == "true" {
			return xquery.Call("fn:true"), tBoolean, nil
		}
		return xquery.Call("fn:false"), tBoolean, nil
	case qfront.LitNull:
		return &xquery.EmptySeq{}, tUnknown, nil
	case qfront.LitDate:
		return &xquery.Cast{Type: "xs:date", Operand: xquery.Str(l.Text)},
			typeInfo{SQL: catalog.SQLDate, X: xdm.TypeDate}, nil
	case qfront.LitTime:
		return &xquery.Cast{Type: "xs:time", Operand: xquery.Str(l.Text)},
			typeInfo{SQL: catalog.SQLTime, X: xdm.TypeTime}, nil
	case qfront.LitTimestamp:
		text := l.Text
		return &xquery.Cast{Type: "xs:dateTime", Operand: xquery.Str(normalizeTimestamp(text))},
			typeInfo{SQL: catalog.SQLTimestamp, X: xdm.TypeDateTime}, nil
	default:
		return nil, typeInfo{}, semErr(l.Pos, "unsupported literal type")
	}
}

// normalizeTimestamp turns the SQL "YYYY-MM-DD HH:MM:SS" form into the
// xs:dateTime "YYYY-MM-DDTHH:MM:SS" lexical form.
func normalizeTimestamp(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i] + "T" + s[i+1:]
		}
	}
	return s
}

func (g *generator) genUnary(e *qfront.UnaryExpr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	operand, t, err := g.genExpr(e.Operand, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	switch e.Op {
	case qfront.UnaryNot:
		return xquery.Call("fn:not", operand), tBoolean, nil
	case qfront.UnaryMinus:
		return &xquery.Unary{Op: "-", Operand: atomized(typedExpr{E: operand, T: t})}, t, nil
	case qfront.UnaryPlus:
		return atomized(typedExpr{E: operand, T: t}), t, nil
	default:
		return nil, typeInfo{}, semErr(e.Pos, "unsupported unary operator")
	}
}

var comparisonXQ = map[qfront.BinaryOp]string{
	qfront.BinEq: "=", qfront.BinNe: "!=", qfront.BinLt: "<",
	qfront.BinLe: "<=", qfront.BinGt: ">", qfront.BinGe: ">=",
}

var arithmeticXQ = map[qfront.BinaryOp]string{
	qfront.BinAdd: "+", qfront.BinSub: "-",
	qfront.BinMul: "*", qfront.BinDiv: "div",
}

func (g *generator) genBinary(e *qfront.BinaryExpr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	if e.Op == qfront.BinAnd || e.Op == qfront.BinOr {
		left, _, err := g.genExpr(e.Left, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
		right, _, err := g.genExpr(e.Right, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
		op := "and"
		if e.Op == qfront.BinOr {
			op = "or"
		}
		return &xquery.Binary{Op: op, Left: left, Right: right}, tBoolean, nil
	}

	// Row value constructors expand before translation: (a, b) = (c, d)
	// becomes column-wise conjunction; orderings chain lexicographically.
	if _, ok := comparisonXQ[e.Op]; ok {
		lRow, lIsRow := e.Left.(*qfront.RowExpr)
		rRow, rIsRow := e.Right.(*qfront.RowExpr)
		if lIsRow || rIsRow {
			if !lIsRow || !rIsRow {
				return nil, typeInfo{}, semErr(e.Pos, "row value constructor compared with a scalar")
			}
			if len(lRow.Items) != len(rRow.Items) {
				return nil, typeInfo{}, semErr(e.Pos, "row value constructors have different degrees (%d vs %d)", len(lRow.Items), len(rRow.Items))
			}
			expanded, err := expandRowComparison(e.Op, lRow, rRow, e.Pos)
			if err != nil {
				return nil, typeInfo{}, err
			}
			return g.genExpr(expanded, sc, agg)
		}
	}

	left, lt, err := g.genExpr(e.Left, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	right, rt, err := g.genExpr(e.Right, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}

	if op, ok := comparisonXQ[e.Op]; ok {
		l, r := g.coerceComparison(e.Left, left, lt, e.Right, right, rt)
		return &xquery.Binary{Op: op, Left: l, Right: r}, tBoolean, nil
	}

	if e.Op == qfront.BinConcat {
		res := tVarchar
		res.Nullable = lt.Nullable || rt.Nullable
		return xquery.Call("fn:concat",
			stringArg(typedExpr{E: left, T: lt}),
			stringArg(typedExpr{E: right, T: rt})), res, nil
	}

	if op, ok := arithmeticXQ[e.Op]; ok {
		l := atomized(typedExpr{E: left, T: lt})
		r := atomized(typedExpr{E: right, T: rt})
		l, r = g.castParamSides(e.Left, l, rt, e.Right, r, lt)
		res := promoteNumeric(lt, rt)
		// SQL integer division truncates; XQuery div over integers
		// yields a decimal, so rewrap to keep SQL-92 semantics.
		if e.Op == qfront.BinDiv && lt.SQL == catalog.SQLInteger && rt.SQL == catalog.SQLInteger {
			div := &xquery.Binary{Op: "div", Left: l, Right: r}
			return castTo(div, xdm.TypeInteger), tIntegerNullable(lt, rt), nil
		}
		return &xquery.Binary{Op: op, Left: l, Right: r}, res, nil
	}

	return nil, typeInfo{}, semErr(e.Pos, "unsupported binary operator %v", e.Op)
}

func tIntegerNullable(a, b typeInfo) typeInfo {
	r := tInteger
	r.Nullable = a.Nullable || b.Nullable
	return r
}

// coerceComparison applies the paper's cast generation: literals and
// parameters compared against a typed expression are cast to that type
// ($var1FR2/ID > xs:integer(10) in Example 8).
func (g *generator) coerceComparison(le qfront.Expr, l xquery.Expr, lt typeInfo, re qfront.Expr, r xquery.Expr, rt typeInfo) (xquery.Expr, xquery.Expr) {
	lLit := isLiteralOrParam(le)
	rLit := isLiteralOrParam(re)
	switch {
	case rLit && !lLit && lt.X != xdm.TypeUntyped:
		if p, ok := re.(*qfront.Param); ok {
			g.noteParamType(p.Index, lt.SQL)
		}
		if needsComparisonCast(re, rt, lt) {
			r = castTo(r, lt.X)
		}
	case lLit && !rLit && rt.X != xdm.TypeUntyped:
		if p, ok := le.(*qfront.Param); ok {
			g.noteParamType(p.Index, rt.SQL)
		}
		if needsComparisonCast(le, lt, rt) {
			l = castTo(l, rt.X)
		}
	}
	return l, r
}

func isLiteralOrParam(e qfront.Expr) bool {
	switch e.(type) {
	case *qfront.Literal, *qfront.Param:
		return true
	default:
		return false
	}
}

// needsComparisonCast decides whether a literal/parameter side needs an
// explicit cast. Parameters always cast (their runtime type is unknown).
// Literals cast to the typed side's type — the paper's Example 8 writes
// xs:integer(10) even against an integer column — except for the
// string-vs-string case, where the paper's own Example 3 compares the bare
// literal.
func needsComparisonCast(e qfront.Expr, have, want typeInfo) bool {
	if want.X == xdm.TypeUntyped {
		return false
	}
	if _, ok := e.(*qfront.Param); ok {
		return true
	}
	if have.X == xdm.TypeString && want.X == xdm.TypeString {
		return false
	}
	return true
}

// castParamSides types bare parameters in arithmetic against the other
// operand.
func (g *generator) castParamSides(le qfront.Expr, l xquery.Expr, rt typeInfo, re qfront.Expr, r xquery.Expr, lt typeInfo) (xquery.Expr, xquery.Expr) {
	if p, ok := le.(*qfront.Param); ok && rt.X != xdm.TypeUntyped {
		g.noteParamType(p.Index, rt.SQL)
		l = castTo(l, rt.X)
	}
	if p, ok := re.(*qfront.Param); ok && lt.X != xdm.TypeUntyped {
		g.noteParamType(p.Index, lt.SQL)
		r = castTo(r, lt.X)
	}
	return l, r
}

func (g *generator) genScalarFunc(e *qfront.FuncCall, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	spec, ok := scalarFuncs[e.Name]
	if !ok {
		return nil, typeInfo{}, semErr(e.Pos, "unknown function %s", e.Name)
	}
	if len(e.Args) < spec.minArgs {
		return nil, typeInfo{}, semErr(e.Pos, "%s expects at least %d argument(s)", e.Name, spec.minArgs)
	}
	if spec.maxArgs >= 0 && len(e.Args) > spec.maxArgs {
		return nil, typeInfo{}, semErr(e.Pos, "%s expects at most %d argument(s)", e.Name, spec.maxArgs)
	}
	args := make([]typedExpr, len(e.Args))
	for i, a := range e.Args {
		xe, ti, err := g.genExpr(a, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
		args[i] = typedExpr{E: xe, T: ti}
	}
	return spec.gen(e, args)
}

func (g *generator) genCase(e *qfront.CaseExpr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	var operand xquery.Expr
	var operandT typeInfo
	if e.Operand != nil {
		var err error
		operand, operandT, err = g.genExpr(e.Operand, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
	}

	// Translate arms back to front, folding into nested ifs.
	var elseExpr xquery.Expr = &xquery.EmptySeq{}
	resultT := tUnknown
	if e.Else != nil {
		var err error
		var et typeInfo
		elseExpr, et, err = g.genExpr(e.Else, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
		elseExpr = atomized(typedExpr{E: elseExpr, T: et})
		resultT = et
	}
	out := elseExpr
	for i := len(e.Whens) - 1; i >= 0; i-- {
		w := e.Whens[i]
		var cond xquery.Expr
		if e.Operand != nil {
			wv, wt, err := g.genExpr(w.When, sc, agg)
			if err != nil {
				return nil, typeInfo{}, err
			}
			l, r := g.coerceComparison(e.Operand, operand, operandT, w.When, wv, wt)
			cond = &xquery.Binary{Op: "=", Left: l, Right: r}
		} else {
			var err error
			cond, _, err = g.genExpr(w.When, sc, agg)
			if err != nil {
				return nil, typeInfo{}, err
			}
		}
		tv, tt, err := g.genExpr(w.Then, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
		if resultT.SQL == catalog.SQLUnknown {
			resultT = tt
		} else if numericRank(resultT.SQL) >= 0 && numericRank(tt.SQL) >= 0 {
			resultT = promoteNumeric(resultT, tt)
		}
		out = &xquery.If{
			Cond: cond,
			Then: atomized(typedExpr{E: tv, T: tt}),
			Else: out,
		}
	}
	resultT.Nullable = true // CASE can fall through to NULL
	if e.Else != nil {
		resultT.Nullable = false
		for _, w := range e.Whens {
			_ = w
		}
		// Conservative: an explicit ELSE may still produce NULL through
		// nullable operands; keep nullable if any arm is nullable.
		resultT.Nullable = anyArmNullable(g, e, sc, agg)
	}
	return out, resultT, nil
}

// anyArmNullable is a conservative nullability estimate for CASE results.
func anyArmNullable(g *generator, e *qfront.CaseExpr, sc *qscope, agg *aggEnv) bool {
	// Re-deriving nullability would mean re-translating arms; assume
	// nullable, which is always safe for result metadata.
	return true
}

func (g *generator) genBetween(e *qfront.BetweenExpr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	operand, ot, err := g.genExpr(e.Operand, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	low, lt, err := g.genExpr(e.Low, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	high, ht, err := g.genExpr(e.High, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	_, lowC := g.coerceComparison(e.Operand, operand, ot, e.Low, low, lt)
	_, highC := g.coerceComparison(e.Operand, operand, ot, e.High, high, ht)
	cond := xquery.Expr(&xquery.Binary{
		Op:    "and",
		Left:  &xquery.Binary{Op: ">=", Left: operand, Right: lowC},
		Right: &xquery.Binary{Op: "<=", Left: operand, Right: highC},
	})
	if e.Not {
		// NOT BETWEEN must stay UNKNOWN (filtered) for NULL operands, so
		// guard with an existence test rather than negating blindly.
		cond = &xquery.Binary{
			Op:    "and",
			Left:  xquery.Call("fn:exists", xquery.Call("fn:data", operand)),
			Right: xquery.Call("fn:not", cond),
		}
	}
	return cond, tBoolean, nil
}

func (g *generator) genIn(e *qfront.InExpr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	if row, ok := e.Operand.(*qfront.RowExpr); ok {
		return g.genRowIn(e, row, sc, agg)
	}
	operand, ot, err := g.genExpr(e.Operand, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	var values xquery.Expr
	if e.Subquery != nil {
		rows, cols, err := g.genSelectStmt(e.Subquery, sc)
		if err != nil {
			return nil, typeInfo{}, err
		}
		if len(cols) != 1 {
			return nil, typeInfo{}, semErr(e.Pos, "IN subquery must return exactly one column, got %d", len(cols))
		}
		values = xquery.Call("fn:data", &xquery.Path{
			Base:  rows,
			Steps: []xquery.PathStep{{Name: cols[0].ElementName}},
		})
	} else {
		items := make([]xquery.Expr, len(e.List))
		for i, item := range e.List {
			xe, it, err := g.genExpr(item, sc, agg)
			if err != nil {
				return nil, typeInfo{}, err
			}
			_, xe = g.coerceComparison(e.Operand, operand, ot, item, xe, it)
			items[i] = xe
		}
		values = &xquery.Seq{Items: items}
	}
	cond := xquery.Expr(&xquery.Binary{Op: "=", Left: operand, Right: values})
	if e.Not {
		cond = &xquery.Binary{
			Op:    "and",
			Left:  xquery.Call("fn:exists", xquery.Call("fn:data", operand)),
			Right: xquery.Call("fn:not", cond),
		}
	}
	return cond, tBoolean, nil
}

func (g *generator) genLike(e *qfront.LikeExpr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	operand, ot, err := g.genExpr(e.Operand, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	pattern, pt, err := g.genExpr(e.Pattern, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	args := []xquery.Expr{
		atomized(typedExpr{E: operand, T: ot}),
		stringArg(typedExpr{E: pattern, T: pt}),
	}
	if e.Escape != nil {
		esc, et, err := g.genExpr(e.Escape, sc, agg)
		if err != nil {
			return nil, typeInfo{}, err
		}
		args = append(args, stringArg(typedExpr{E: esc, T: et}))
	}
	cond := xquery.Expr(xquery.Call("fn-bea:sql-like", args...))
	if e.Not {
		cond = &xquery.Binary{
			Op:    "and",
			Left:  xquery.Call("fn:exists", xquery.Call("fn:data", operand)),
			Right: xquery.Call("fn:not", cond),
		}
	}
	return cond, tBoolean, nil
}

func (g *generator) genScalarSubquery(e *qfront.SubqueryExpr, sc *qscope) (xquery.Expr, typeInfo, error) {
	rows, cols, err := g.genSelectStmt(e.Query, sc)
	if err != nil {
		return nil, typeInfo{}, err
	}
	if len(cols) != 1 {
		return nil, typeInfo{}, semErr(e.Pos, "scalar subquery must return exactly one column, got %d", len(cols))
	}
	value := xquery.Call("fn:data", &xquery.Path{
		Base:  rows,
		Steps: []xquery.PathStep{{Name: cols[0].ElementName}},
	})
	t := typeInfo{SQL: cols[0].SQL, X: cols[0].Type, Nullable: true}
	return value, t, nil
}

func (g *generator) genQuantified(e *qfront.QuantifiedExpr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	left, lt, err := g.genExpr(e.Left, sc, agg)
	if err != nil {
		return nil, typeInfo{}, err
	}
	rows, cols, err := g.genSelectStmt(e.Subquery, sc)
	if err != nil {
		return nil, typeInfo{}, err
	}
	if len(cols) != 1 {
		return nil, typeInfo{}, semErr(e.Pos, "quantified subquery must return exactly one column, got %d", len(cols))
	}
	values := xquery.Call("fn:data", &xquery.Path{
		Base:  rows,
		Steps: []xquery.PathStep{{Name: cols[0].ElementName}},
	})
	op := comparisonXQ[e.Op]
	if e.Quant == qfront.QuantAny {
		// XQuery general comparisons are existential: x > (values) is
		// exactly x > ANY (subquery).
		return &xquery.Binary{Op: op, Left: left, Right: values}, tBoolean, nil
	}
	// ALL: every value must satisfy the comparison.
	qv := g.names.rowVar(0, zoneWhere)
	return &xquery.Quantified{
		Every:     true,
		Var:       qv,
		In:        values,
		Satisfies: &xquery.Binary{Op: op, Left: atomized(typedExpr{E: left, T: lt}), Right: xquery.VarRef(qv)},
	}, tBoolean, nil
}

// expandRowComparison rewrites a row-value comparison into scalar
// predicates per SQL-92: equality is the conjunction of element
// equalities, inequality its De Morgan dual, and orderings expand
// lexicographically ((a,b) < (c,d) ⇔ a<c OR (a=c AND b<d)).
func expandRowComparison(op qfront.BinaryOp, l, r *qfront.RowExpr, pos qfront.Pos) (qfront.Expr, error) {
	eq := func(i int) qfront.Expr {
		return &qfront.BinaryExpr{Pos: pos, Op: qfront.BinEq, Left: l.Items[i], Right: r.Items[i]}
	}
	conj := func(items []qfront.Expr, join qfront.BinaryOp) qfront.Expr {
		out := items[0]
		for _, item := range items[1:] {
			out = &qfront.BinaryExpr{Pos: pos, Op: join, Left: out, Right: item}
		}
		return out
	}
	switch op {
	case qfront.BinEq:
		parts := make([]qfront.Expr, len(l.Items))
		for i := range l.Items {
			parts[i] = eq(i)
		}
		return conj(parts, qfront.BinAnd), nil
	case qfront.BinNe:
		parts := make([]qfront.Expr, len(l.Items))
		for i := range l.Items {
			parts[i] = &qfront.BinaryExpr{Pos: pos, Op: qfront.BinNe, Left: l.Items[i], Right: r.Items[i]}
		}
		return conj(parts, qfront.BinOr), nil
	case qfront.BinLt, qfront.BinGt, qfront.BinLe, qfront.BinGe:
		strict := op
		if op == qfront.BinLe {
			strict = qfront.BinLt
		}
		if op == qfront.BinGe {
			strict = qfront.BinGt
		}
		// Lexicographic expansion, innermost element last.
		last := len(l.Items) - 1
		var out qfront.Expr = &qfront.BinaryExpr{Pos: pos, Op: op, Left: l.Items[last], Right: r.Items[last]}
		for i := last - 1; i >= 0; i-- {
			out = &qfront.BinaryExpr{
				Pos: pos, Op: qfront.BinOr,
				Left: &qfront.BinaryExpr{Pos: pos, Op: strict, Left: l.Items[i], Right: r.Items[i]},
				Right: &qfront.BinaryExpr{
					Pos: pos, Op: qfront.BinAnd,
					Left:  eq(i),
					Right: out,
				},
			}
		}
		return out, nil
	default:
		return nil, semErr(pos, "row value constructors do not support this operator")
	}
}

// genRowIn translates multi-column IN: (a, b) IN (SELECT x, y …) becomes a
// quantified membership test over the subquery's RECORD rows, and the list
// form (a, b) IN ((1, 2), (3, 4)) a disjunction of row equalities.
func (g *generator) genRowIn(e *qfront.InExpr, row *qfront.RowExpr, sc *qscope, agg *aggEnv) (xquery.Expr, typeInfo, error) {
	var cond xquery.Expr
	if e.Subquery != nil {
		rows, cols, err := g.genSelectStmt(e.Subquery, sc)
		if err != nil {
			return nil, typeInfo{}, err
		}
		if len(cols) != len(row.Items) {
			return nil, typeInfo{}, semErr(e.Pos, "IN subquery returns %d column(s) for a row of degree %d", len(cols), len(row.Items))
		}
		qv := g.names.rowVar(0, zoneWhere)
		var sat xquery.Expr
		for i, item := range row.Items {
			xe, it, err := g.genExpr(item, sc, agg)
			if err != nil {
				return nil, typeInfo{}, err
			}
			eq := &xquery.Binary{Op: "=",
				Left:  atomized(typedExpr{E: xe, T: it}),
				Right: xquery.Call("fn:data", xquery.ChildPath(qv, cols[i].ElementName)),
			}
			if sat == nil {
				sat = eq
			} else {
				sat = &xquery.Binary{Op: "and", Left: sat, Right: eq}
			}
		}
		cond = &xquery.Quantified{Var: qv, In: rows, Satisfies: sat}
	} else {
		for _, item := range e.List {
			other, ok := item.(*qfront.RowExpr)
			if !ok {
				return nil, typeInfo{}, semErr(item.Position(), "IN list for a row value must contain row values")
			}
			expanded, err := expandRowComparison(qfront.BinEq, row, other, e.Pos)
			if err != nil {
				return nil, typeInfo{}, err
			}
			eq, _, err := g.genExpr(expanded, sc, agg)
			if err != nil {
				return nil, typeInfo{}, err
			}
			if cond == nil {
				cond = eq
			} else {
				cond = &xquery.Binary{Op: "or", Left: cond, Right: eq}
			}
		}
		if cond == nil {
			return nil, typeInfo{}, semErr(e.Pos, "empty IN list")
		}
	}
	if e.Not {
		cond = xquery.Call("fn:not", cond)
	}
	return cond, tBoolean, nil
}
