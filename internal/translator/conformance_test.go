package translator_test

// P4 — the SQL-92 SELECT conformance matrix. The paper claims the
// translator "supports almost all of the SELECT functionality of SQL-92";
// this suite enumerates that functionality feature by feature. Every entry
// must translate AND execute against the fixture engine without error
// (row-level semantics are covered by exec_test.go; this matrix is about
// coverage breadth).

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/translator"
)

var conformanceMatrix = []struct {
	feature string
	sql     string
}{
	// --- projection ---
	{"select star", "SELECT * FROM CUSTOMERS"},
	{"qualified star", "SELECT CUSTOMERS.* FROM CUSTOMERS"},
	{"alias star mix", "SELECT C.*, C.CUSTOMERID FROM CUSTOMERS C"},
	{"column list", "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS"},
	{"column aliases AS", "SELECT CUSTOMERID AS ID FROM CUSTOMERS"},
	{"column aliases bare", "SELECT CUSTOMERID ID FROM CUSTOMERS"},
	{"expressions", "SELECT CUSTOMERID + 1, CUSTOMERID * 2 - 3 FROM CUSTOMERS"},
	{"string concat", "SELECT CUSTOMERNAME || ' (' || CITY || ')' FROM CUSTOMERS"},
	{"distinct", "SELECT DISTINCT CITY FROM CUSTOMERS"},
	{"all (noise word)", "SELECT ALL CITY FROM CUSTOMERS"},
	{"select without from", "SELECT 1, 'x'"},

	// --- literals ---
	{"integer literal", "SELECT 42 FROM CUSTOMERS"},
	{"decimal literal", "SELECT 5.6 FROM CUSTOMERS"},
	{"approximate literal", "SELECT 1.5E2 FROM CUSTOMERS"},
	{"string literal escape", "SELECT 'it''s' FROM CUSTOMERS"},
	{"null literal", "SELECT NULL FROM CUSTOMERS"},
	{"date literal", "SELECT DATE '2006-07-05' FROM CUSTOMERS"},
	{"time literal", "SELECT TIME '12:34:56' FROM CUSTOMERS"},
	{"timestamp literal", "SELECT TIMESTAMP '2006-07-05 12:34:56' FROM CUSTOMERS"},

	// --- FROM ---
	{"table alias AS", "SELECT C.CUSTOMERID FROM CUSTOMERS AS C"},
	{"table alias bare", "SELECT C.CUSTOMERID FROM CUSTOMERS C"},
	{"schema-qualified table", `SELECT CUSTOMERID FROM "TestDataServices/CUSTOMERS".CUSTOMERS`},
	{"comma join", "SELECT C.CUSTOMERID FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID"},
	{"three-way comma join", "SELECT 1 FROM CUSTOMERS C, PAYMENTS P, PO_CUSTOMERS O WHERE C.CUSTOMERID = P.CUSTID AND C.CUSTOMERID = O.CUSTOMERID"},
	{"derived table", "SELECT D.X FROM (SELECT CUSTOMERID X FROM CUSTOMERS) AS D"},
	{"derived column list", "SELECT D.A FROM (SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS) AS D (A, B)"},

	// --- joins ---
	{"inner join", "SELECT 1 FROM CUSTOMERS JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"},
	{"inner join keyword", "SELECT 1 FROM CUSTOMERS INNER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"},
	{"left outer join", "SELECT 1 FROM CUSTOMERS LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"},
	{"left join shorthand", "SELECT 1 FROM CUSTOMERS LEFT JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"},
	{"right outer join", "SELECT 1 FROM CUSTOMERS RIGHT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"},
	{"full outer join", "SELECT 1 FROM CUSTOMERS FULL OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"},
	{"cross join", "SELECT 1 FROM CUSTOMERS CROSS JOIN PAYMENTS"},
	{"join using", "SELECT 1 FROM CUSTOMERS JOIN PO_CUSTOMERS USING (CUSTOMERID)"},
	{"natural join", "SELECT 1 FROM CUSTOMERS NATURAL JOIN PO_CUSTOMERS"},
	{"join chain", "SELECT 1 FROM CUSTOMERS C JOIN PO_CUSTOMERS O ON C.CUSTOMERID = O.CUSTOMERID JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID"},
	{"parenthesized join", "SELECT 1 FROM (CUSTOMERS JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID)"},
	{"aliased join", "SELECT P.PAYMENTID FROM (CUSTOMERS JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID) AS P"},
	{"outer join of derived", "SELECT 1 FROM CUSTOMERS LEFT OUTER JOIN (SELECT CUSTID FROM PAYMENTS) AS D ON CUSTOMERS.CUSTOMERID = D.CUSTID"},
	{"join of joins", "SELECT 1 FROM (CUSTOMERS JOIN PO_CUSTOMERS ON CUSTOMERS.CUSTOMERID = PO_CUSTOMERS.CUSTOMERID) LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"},

	// --- WHERE predicates ---
	{"comparison operators", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID = 1 OR CUSTOMERID <> 2 OR CUSTOMERID < 3 OR CUSTOMERID <= 4 OR CUSTOMERID > 5 OR CUSTOMERID >= 6"},
	{"boolean connectives", "SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID > 1 AND CITY = 'x') OR NOT (CUSTOMERNAME = 'y')"},
	{"between", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID BETWEEN 1 AND 5"},
	{"not between", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID NOT BETWEEN 1 AND 5"},
	{"in list", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID IN (1, 2, 3)"},
	{"not in list", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID NOT IN (1, 2, 3)"},
	{"in subquery", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS)"},
	{"not in subquery", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID NOT IN (SELECT CUSTID FROM PAYMENTS)"},
	{"like", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERNAME LIKE 'J%'"},
	{"like underscore", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERNAME LIKE '_oe'"},
	{"like escape", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERNAME LIKE '100!%%' ESCAPE '!'"},
	{"not like", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERNAME NOT LIKE 'J%'"},
	{"is null", "SELECT 1 FROM CUSTOMERS WHERE CITY IS NULL"},
	{"is not null", "SELECT 1 FROM CUSTOMERS WHERE CITY IS NOT NULL"},
	{"exists", "SELECT 1 FROM CUSTOMERS C WHERE EXISTS (SELECT 1 FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID)"},
	{"not exists", "SELECT 1 FROM CUSTOMERS C WHERE NOT EXISTS (SELECT 1 FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID)"},
	{"quantified any", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID = ANY (SELECT CUSTID FROM PAYMENTS)"},
	{"quantified some", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID = SOME (SELECT CUSTID FROM PAYMENTS)"},
	{"quantified all", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID >= ALL (SELECT CUSTID FROM PAYMENTS WHERE CUSTID < 3)"},
	{"scalar subquery comparison", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID = (SELECT MIN(CUSTID) FROM PAYMENTS)"},
	{"correlated scalar subquery", "SELECT (SELECT COUNT(*) FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID) FROM CUSTOMERS C"},
	{"parameters", "SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID = 1 AND CUSTOMERID < 100"},

	// --- aggregates and grouping ---
	{"count star", "SELECT COUNT(*) FROM CUSTOMERS"},
	{"count column", "SELECT COUNT(CITY) FROM CUSTOMERS"},
	{"count distinct", "SELECT COUNT(DISTINCT CITY) FROM CUSTOMERS"},
	{"sum avg min max", "SELECT SUM(PAYMENT), AVG(PAYMENT), MIN(PAYMENT), MAX(PAYMENT) FROM PAYMENTS"},
	{"sum distinct", "SELECT SUM(DISTINCT CUSTID) FROM PAYMENTS"},
	{"aggregate of expression", "SELECT SUM(PAYMENT * 2) FROM PAYMENTS"},
	{"group by", "SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY"},
	{"group by multiple", "SELECT CUSTID, PAYDATE, COUNT(*) FROM PAYMENTS GROUP BY CUSTID, PAYDATE"},
	{"group by expression key reuse", "SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) >= 1"},
	{"having", "SELECT CUSTID FROM PAYMENTS GROUP BY CUSTID HAVING COUNT(*) > 1"},
	{"having aggregate only", "SELECT COUNT(*) FROM PAYMENTS HAVING COUNT(*) > 0"},
	{"group by qualified", "SELECT CUSTOMERS.CITY, COUNT(*) FROM CUSTOMERS GROUP BY CUSTOMERS.CITY"},
	{"scalar function of group key", "SELECT UPPER(CITY), COUNT(*) FROM CUSTOMERS GROUP BY CITY"},

	// --- set operations ---
	{"union", "SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS"},
	{"union all", "SELECT CUSTOMERID FROM CUSTOMERS UNION ALL SELECT CUSTID FROM PAYMENTS"},
	{"except", "SELECT CUSTOMERID FROM CUSTOMERS EXCEPT SELECT CUSTID FROM PAYMENTS"},
	{"except all", "SELECT CUSTOMERID FROM CUSTOMERS EXCEPT ALL SELECT CUSTID FROM PAYMENTS"},
	{"intersect", "SELECT CUSTOMERID FROM CUSTOMERS INTERSECT SELECT CUSTID FROM PAYMENTS"},
	{"intersect all", "SELECT CUSTOMERID FROM CUSTOMERS INTERSECT ALL SELECT CUSTID FROM PAYMENTS"},
	{"set op chain", "SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS EXCEPT SELECT CUSTOMERID FROM PO_CUSTOMERS"},
	{"set op with order by", "SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS ORDER BY CUSTOMERID DESC"},
	{"union of grouped", "SELECT CITY FROM CUSTOMERS GROUP BY CITY UNION SELECT CUSTOMERNAME FROM CUSTOMERS"},

	// --- ORDER BY ---
	{"order by column", "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERNAME"},
	{"order by desc", "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERNAME DESC"},
	{"order by asc explicit", "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERNAME ASC"},
	{"order by ordinal", "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS ORDER BY 2"},
	{"order by alias", "SELECT CUSTOMERID AS K FROM CUSTOMERS ORDER BY K"},
	{"order by multiple", "SELECT CUSTOMERID, CITY FROM CUSTOMERS ORDER BY CITY DESC, CUSTOMERID"},
	{"order by non-projected", "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID"},
	{"order by expression", "SELECT CUSTOMERID FROM CUSTOMERS ORDER BY CUSTOMERID * -1"},

	// --- CASE / CAST / functions ---
	{"case searched", "SELECT CASE WHEN CUSTOMERID > 2 THEN 'hi' ELSE 'lo' END FROM CUSTOMERS"},
	{"case simple", "SELECT CASE CITY WHEN 'Springfield' THEN 1 ELSE 0 END FROM CUSTOMERS"},
	{"case no else", "SELECT CASE WHEN CUSTOMERID = 1 THEN 'one' END FROM CUSTOMERS"},
	{"nested case", "SELECT CASE WHEN CUSTOMERID > 1 THEN CASE WHEN CUSTOMERID > 3 THEN 'a' ELSE 'b' END ELSE 'c' END FROM CUSTOMERS"},
	{"cast to integer", "SELECT CAST(PAYMENT AS INTEGER) FROM PAYMENTS"},
	{"cast to varchar", "SELECT CAST(CUSTOMERID AS VARCHAR(10)) FROM CUSTOMERS"},
	{"cast to decimal", "SELECT CAST(CUSTOMERID AS DECIMAL(10, 2)) FROM CUSTOMERS"},
	{"cast to double", "SELECT CAST(CUSTOMERID AS DOUBLE PRECISION) FROM CUSTOMERS"},
	{"upper lower", "SELECT UPPER(CUSTOMERNAME), LOWER(CITY) FROM CUSTOMERS"},
	{"substring from for", "SELECT SUBSTRING(CUSTOMERNAME FROM 1 FOR 2) FROM CUSTOMERS"},
	{"substring commas", "SELECT SUBSTRING(CUSTOMERNAME, 2) FROM CUSTOMERS"},
	{"length", "SELECT LENGTH(CUSTOMERNAME), CHAR_LENGTH(CUSTOMERNAME) FROM CUSTOMERS"},
	{"position", "SELECT POSITION('o' IN CUSTOMERNAME) FROM CUSTOMERS"},
	{"trim forms", "SELECT TRIM(CUSTOMERNAME), TRIM(LEADING FROM CUSTOMERNAME), TRIM(BOTH 'x' FROM CUSTOMERNAME) FROM CUSTOMERS"},
	{"numeric functions", "SELECT ABS(CUSTOMERID), MOD(CUSTOMERID, 3), ROUND(PAYMENT), FLOOR(PAYMENT), CEILING(PAYMENT) FROM CUSTOMERS, PAYMENTS WHERE CUSTOMERID = CUSTID"},
	{"coalesce", "SELECT COALESCE(CITY, 'none') FROM CUSTOMERS"},
	{"coalesce chain", "SELECT COALESCE(CITY, CUSTOMERNAME, 'none') FROM CUSTOMERS"},
	{"nullif", "SELECT NULLIF(CITY, 'Springfield') FROM CUSTOMERS"},
	{"extract", "SELECT EXTRACT(YEAR FROM SIGNUPDATE), EXTRACT(MONTH FROM SIGNUPDATE), EXTRACT(DAY FROM SIGNUPDATE) FROM CUSTOMERS"},
	{"current datetime", "SELECT CURRENT_DATE, CURRENT_TIME, CURRENT_TIMESTAMP FROM CUSTOMERS"},
	{"concat function", "SELECT CONCAT(CUSTOMERNAME, CITY) FROM CUSTOMERS"},
	{"unary minus", "SELECT -CUSTOMERID, -(CUSTOMERID + 1) FROM CUSTOMERS"},

	// --- nesting and composition ---
	{"derived of derived", "SELECT A.X FROM (SELECT B.Y X FROM (SELECT CUSTOMERID Y FROM CUSTOMERS) AS B) AS A"},
	{"grouped derived table", "SELECT D.N FROM (SELECT CUSTID, COUNT(*) N FROM PAYMENTS GROUP BY CUSTID) AS D WHERE D.N > 1"},
	{"subquery in having", "SELECT CUSTID FROM PAYMENTS GROUP BY CUSTID HAVING COUNT(*) > (SELECT 1 FROM CUSTOMERS WHERE CUSTOMERID = 1)"},
	{"join of derived tables", "SELECT 1 FROM (SELECT CUSTOMERID A FROM CUSTOMERS) AS X JOIN (SELECT CUSTID B FROM PAYMENTS) AS Y ON X.A = Y.B"},
	{"union inside derived", "SELECT D.CUSTOMERID FROM (SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS) AS D"},
	// --- extensions beyond strict SQL-92 (documented in README) ---
	{"fetch first", "SELECT CUSTOMERID FROM CUSTOMERS ORDER BY CUSTOMERID FETCH FIRST 2 ROWS ONLY"},
	{"fetch next row", "SELECT CUSTOMERID FROM CUSTOMERS FETCH NEXT ROW ONLY"},
	{"fetch over union", "SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS ORDER BY CUSTOMERID FETCH FIRST 3 ROWS ONLY"},
	{"left right functions", "SELECT LEFT(CUSTOMERNAME, 2), RIGHT(CUSTOMERNAME, 2) FROM CUSTOMERS"},

	// --- row value constructors (SQL-92 §8.2) ---
	{"row equality", "SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID, CITY) = (1, 'Springfield')"},
	{"row inequality", "SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID, CITY) <> (1, 'Springfield')"},
	{"row ordering", "SELECT 1 FROM CUSTOMERS WHERE (CITY, CUSTOMERID) < ('Z', 99)"},
	{"row in list", "SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID, CITY) IN ((1, 'Springfield'), (2, 'Riverton'))"},
	{"row in subquery", "SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID, 'OPEN') IN (SELECT CUSTOMERID, STATUS FROM PO_CUSTOMERS)"},

	{"everything at once", `SELECT C.CITY, COUNT(*) AS CNT, SUM(P.PAYMENT) AS TOTAL
		FROM CUSTOMERS C LEFT OUTER JOIN PAYMENTS P ON C.CUSTOMERID = P.CUSTID
		WHERE C.CUSTOMERID BETWEEN 1 AND 100 AND C.CUSTOMERNAME NOT LIKE 'Z%'
		GROUP BY C.CITY
		HAVING COUNT(*) >= 1
		ORDER BY CNT DESC, C.CITY`},
}

func TestSQL92ConformanceMatrix(t *testing.T) {
	engine := fixtureEngine()
	for _, c := range conformanceMatrix {
		c := c
		t.Run(c.feature, func(t *testing.T) {
			tr := translator.New(catalog.Demo())
			res, err := tr.Translate(c.sql)
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			// Execute; parameters receive integer 1.
			ext := map[string]Sequence{}
			for i := 0; i < res.ParamCount; i++ {
				ext[fmt.Sprintf("p%d", i+1)] = intSeq(1)
			}
			if _, err := engine.EvalWith(res.Query, ext); err != nil {
				t.Fatalf("execute: %v\nxquery:\n%s", err, res.XQuery())
			}
		})
	}
}

// TestConformanceBothModes spot-checks that every feature class also
// survives the §4 text wrapper.
func TestConformanceBothModes(t *testing.T) {
	engine := fixtureEngine()
	for _, c := range conformanceMatrix {
		tr := translator.New(catalog.Demo())
		tr.Options.Mode = translator.ModeText
		res, err := tr.Translate(c.sql)
		if err != nil {
			t.Fatalf("%s: translate (text mode): %v", c.feature, err)
		}
		ext := map[string]Sequence{}
		for i := 0; i < res.ParamCount; i++ {
			ext[fmt.Sprintf("p%d", i+1)] = intSeq(1)
		}
		if _, err := engine.EvalWith(res.Query, ext); err != nil {
			t.Fatalf("%s: execute (text mode): %v", c.feature, err)
		}
	}
}
