package translator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/qfront"
	"repro/internal/xquery"
)

// generator holds the shared state of stages two and three: the metadata
// source, the accumulated schema imports, the variable name generator, and
// inferred parameter types.
type generator struct {
	ctx      context.Context
	meta     catalog.Source
	opts     Options
	contexts *Context
	names    nameGen

	prefixByNS map[string]string
	imports    []xquery.SchemaImport

	pTypes map[int]catalog.SQLType

	// sources records the federation backends table lookups resolved
	// against, in first-touch order without duplicates (empty when the
	// metadata source does not name sources).
	sources []string

	// stat counts stage-two work for the restructure trace span.
	stat genStats
}

// genStats is the generator's stage-detail record: how much semantic work
// stage two performed (reported as restructure detail in traces).
type genStats struct {
	// tables counts base-table resolutions against the catalog.
	tables int64
	// wildcards counts `*` and `T.*` projection expansions (Figure 6).
	wildcards int64
}

func newGenerator(ctx context.Context, meta catalog.Source, opts Options, contexts *Context) *generator {
	return &generator{
		ctx:        ctx,
		meta:       meta,
		opts:       opts,
		contexts:   contexts,
		prefixByNS: map[string]string{},
		pTypes:     map[int]catalog.SQLType{},
	}
}

// prefixFor assigns (or reuses) an ns<i> prefix for a function namespace
// and records the schema import for the prolog.
func (g *generator) prefixFor(f *catalog.Function) string {
	if p, ok := g.prefixByNS[f.Namespace]; ok {
		return p
	}
	p := fmt.Sprintf("ns%d", len(g.imports))
	g.prefixByNS[f.Namespace] = p
	g.imports = append(g.imports, xquery.SchemaImport{
		Prefix:    p,
		Namespace: f.Namespace,
		Location:  f.SchemaLocation,
	})
	return p
}

func (g *generator) schemaImports() []xquery.SchemaImport { return g.imports }

func (g *generator) paramTypes(n int) []catalog.SQLType {
	out := make([]catalog.SQLType, n)
	for i := range out {
		out[i] = g.pTypes[i+1]
	}
	return out
}

func (g *generator) noteParamType(idx int, t catalog.SQLType) {
	if t == catalog.SQLUnknown {
		return
	}
	if _, ok := g.pTypes[idx]; !ok {
		g.pTypes[idx] = t
	}
}

// ctxID returns the context id for a query block (0 if the block is
// somehow unknown, which only synthetic ASTs can produce).
func (g *generator) ctxID(spec *qfront.QuerySpec) int {
	if ctx := g.contexts.Find(spec); ctx != nil {
		return ctx.ID
	}
	return 0
}

// fromResult is the prepared FROM clause of one query block: the FLWOR
// clauses that produce the tuple stream, extra join conjuncts to fold into
// the WHERE, and the scope with all range bindings.
type fromResult struct {
	clauses   []xquery.Clause
	conjuncts []xquery.Expr
	scope     *qscope
}

// buildFrom prepares the FROM clause: base tables become `for` clauses over
// data service function calls (Figure 7's FROM→for mapping); derived tables
// become `let` + `for …/RECORD`; inner and cross joins flatten into
// multiple `for` clauses with their ON conditions folded into the WHERE
// (the paper's Example 12 "double for" shape); outer joins materialize the
// let + XPath-filter + if-empty pattern of Example 10.
func (g *generator) buildFrom(from []qfront.TableRef, parent *qscope, ctxID int) (*fromResult, error) {
	fr := &fromResult{scope: &qscope{parent: parent}}
	for _, ref := range from {
		if err := g.addTableRef(ref, fr, ctxID); err != nil {
			return nil, err
		}
	}
	if err := checkDuplicateRangeVars(fr.scope, from); err != nil {
		return nil, err
	}
	return fr, nil
}

func checkDuplicateRangeVars(sc *qscope, from []qfront.TableRef) error {
	seen := map[string]bool{}
	for _, b := range sc.bindings {
		if b.Name == "" {
			continue
		}
		key := strings.ToUpper(b.Name)
		if seen[key] {
			pos := qfront.Pos{Line: 1, Col: 1}
			if len(from) > 0 {
				pos = from[0].Position()
			}
			return semErr(pos, "duplicate range variable %s in FROM clause", b.Name)
		}
		seen[key] = true
	}
	return nil
}

func (g *generator) addTableRef(ref qfront.TableRef, fr *fromResult, ctxID int) error {
	switch ref := ref.(type) {
	case *qfront.TableName:
		return g.addBaseTable(ref, fr, ctxID)
	case *qfront.DerivedTable:
		return g.addDerivedTable(ref, fr, ctxID)
	case *qfront.JoinExpr:
		return g.addJoin(ref, fr, ctxID)
	default:
		return semErr(ref.Position(), "unsupported FROM item %T", ref)
	}
}

// addBaseTable resolves a table to its data service function and adds a
// `for` clause over the function call.
func (g *generator) addBaseTable(t *qfront.TableName, fr *fromResult, ctxID int) error {
	meta, err := g.lookupTable(t)
	if err != nil {
		return err
	}
	g.stat.tables++
	f := meta.Function
	prefix := g.prefixFor(f)
	rowVar := g.names.rowVar(ctxID, zoneFrom)
	cols := make([]colInfo, len(f.Columns))
	for i, c := range f.Columns {
		cols[i] = colInfo{
			Name:      strings.ToUpper(c.Name),
			SQL:       c.Type,
			Type:      c.Type.Atomic(),
			Nullable:  c.Nullable,
			Precision: c.Precision,
			Scale:     c.Scale,
			Accessor:  c.Name,
		}
	}
	fr.scope.add(&binding{Name: strings.ToUpper(t.RangeVar()), Cols: cols, RowVar: rowVar})
	fr.clauses = append(fr.clauses, &xquery.For{
		Var: rowVar,
		In:  xquery.Call(prefix + ":" + f.Name),
	})
	return nil
}

func (g *generator) lookupTable(t *qfront.TableName) (*catalog.TableMeta, error) {
	meta, err := catalog.LookupContext(g.ctx, g.meta, catalog.TableRef{
		Catalog: t.Catalog,
		Schema:  t.Schema,
		Table:   t.Name,
	})
	if err != nil {
		// Name-resolution failures are SQL semantic errors with the table's
		// source position; infrastructure failures (backend down, timeout)
		// are not the SQL's fault and keep their own classified types.
		var nf *catalog.NotFoundError
		var amb *catalog.AmbiguousError
		if errors.As(err, &nf) || errors.As(err, &amb) {
			return nil, semErr(t.Pos, "%v", err)
		}
		return nil, err
	}
	if !meta.Function.IsTable() {
		return nil, semErr(t.Pos, "%s is a parameterized data service function; call it as a stored procedure, not a table", t.Name)
	}
	g.noteSource(meta.Source)
	return meta, nil
}

// noteSource records which federation backend a lookup resolved against
// (first-touch order, deduplicated). Single-backend sources leave
// TableMeta.Source empty and record nothing.
func (g *generator) noteSource(source string) {
	if source == "" {
		return
	}
	for _, s := range g.sources {
		if s == source {
			return
		}
	}
	g.sources = append(g.sources, source)
}

// addDerivedTable translates the subquery, binds it with a let (the
// paper's mapping of every SQL view abstraction onto an XQuery let), and
// adds a for over its RECORD rows.
func (g *generator) addDerivedTable(d *qfront.DerivedTable, fr *fromResult, ctxID int) error {
	rows, cols, err := g.genSelectStmt(d.Query, fr.scope.parent)
	if err != nil {
		return err
	}
	if len(d.ColumnAliases) > 0 {
		if len(d.ColumnAliases) != len(cols) {
			return semErr(d.Pos, "derived column list has %d names for %d columns", len(d.ColumnAliases), len(cols))
		}
	}
	tempVar := g.names.tempVar(ctxID, zoneFrom)
	rowVar := g.names.rowVar(ctxID, zoneFrom)

	bcols := make([]colInfo, len(cols))
	for i, c := range cols {
		name := c.Label
		if len(d.ColumnAliases) > 0 {
			name = strings.ToUpper(d.ColumnAliases[i])
		}
		bcols[i] = colInfo{
			Name:     strings.ToUpper(name),
			SQL:      c.SQL,
			Type:     c.Type,
			Nullable: c.Nullable,
			Accessor: c.ElementName,
		}
	}
	fr.scope.add(&binding{Name: strings.ToUpper(d.Alias), Cols: bcols, RowVar: rowVar})
	fr.clauses = append(fr.clauses,
		&xquery.Let{Var: tempVar, Expr: recordsetCtor(rows)},
		&xquery.For{Var: rowVar, In: xquery.ChildPath(tempVar, "RECORD")},
	)
	return nil
}

// addJoin dispatches on join flavor.
func (g *generator) addJoin(j *qfront.JoinExpr, fr *fromResult, ctxID int) error {
	switch j.Type {
	case qfront.JoinInner, qfront.JoinCross:
		return g.addInnerJoin(j, fr, ctxID)
	case qfront.JoinLeftOuter, qfront.JoinRightOuter, qfront.JoinFullOuter:
		return g.addOuterJoin(j, fr, ctxID)
	default:
		return semErr(j.Pos, "unsupported join type %v", j.Type)
	}
}

// addInnerJoin flattens both sides into the current tuple stream and folds
// the join condition into the WHERE conjuncts (Example 12's shape). An
// aliased inner join additionally groups its columns under the alias.
func (g *generator) addInnerJoin(j *qfront.JoinExpr, fr *fromResult, ctxID int) error {
	// Remember which bindings the join introduces, for USING/NATURAL and
	// alias handling.
	before := len(fr.scope.bindings)
	if err := g.addTableRef(j.Left, fr, ctxID); err != nil {
		return err
	}
	leftEnd := len(fr.scope.bindings)
	if err := g.addTableRef(j.Right, fr, ctxID); err != nil {
		return err
	}
	joinScope := &qscope{parent: fr.scope.parent, bindings: fr.scope.bindings[before:]}
	leftScope := &qscope{bindings: fr.scope.bindings[before:leftEnd]}
	rightScope := &qscope{bindings: fr.scope.bindings[leftEnd:]}

	cond, err := g.joinCondition(j, joinScope, leftScope, rightScope)
	if err != nil {
		return err
	}
	if cond != nil {
		fr.conjuncts = append(fr.conjuncts, cond)
	}
	if j.Alias != "" {
		g.aliasJoinBindings(fr, before, j.Alias)
	}
	return nil
}

// joinCondition renders ON / USING / NATURAL into a boolean expression
// over the join's own scope.
func (g *generator) joinCondition(j *qfront.JoinExpr, joinScope, leftScope, rightScope *qscope) (xquery.Expr, error) {
	switch {
	case j.Cond != nil:
		cond, _, err := g.genExpr(j.Cond, joinScope, nil)
		return cond, err
	case len(j.Using) > 0:
		return g.equiCondition(j, j.Using, leftScope, rightScope)
	case j.Natural:
		common := commonColumns(leftScope, rightScope)
		if len(common) == 0 {
			return nil, semErr(j.Pos, "NATURAL JOIN has no common columns")
		}
		return g.equiCondition(j, common, leftScope, rightScope)
	case j.Type == qfront.JoinCross:
		return nil, nil
	default:
		return nil, semErr(j.Pos, "join requires a condition")
	}
}

func (g *generator) equiCondition(j *qfront.JoinExpr, cols []string, leftScope, rightScope *qscope) (xquery.Expr, error) {
	var cond xquery.Expr
	for _, name := range cols {
		l, err := leftScope.resolve(&qfront.ColumnRef{Pos: j.Pos, Column: strings.ToUpper(name)})
		if err != nil {
			return nil, err
		}
		r, err := rightScope.resolve(&qfront.ColumnRef{Pos: j.Pos, Column: strings.ToUpper(name)})
		if err != nil {
			return nil, err
		}
		eq := &xquery.Binary{Op: "=", Left: l.Expr, Right: r.Expr}
		if cond == nil {
			cond = eq
		} else {
			cond = &xquery.Binary{Op: "and", Left: cond, Right: eq}
		}
	}
	return cond, nil
}

func commonColumns(left, right *qscope) []string {
	rightCols := map[string]bool{}
	for _, b := range right.bindings {
		for _, c := range b.Cols {
			rightCols[c.Name] = true
		}
	}
	var common []string
	for _, b := range left.bindings {
		for _, c := range b.Cols {
			if rightCols[c.Name] {
				common = append(common, c.Name)
			}
		}
	}
	sort.Strings(common)
	return common
}

// aliasJoinBindings collapses the bindings a parenthesized aliased join
// introduced into a single binding named by the alias, exposing the
// columns under their bare names (SQL's view of "(A JOIN B …) AS P").
// Ambiguous bare names stay reachable only via their original qualifiers.
func (g *generator) aliasJoinBindings(fr *fromResult, from int, alias string) {
	counts := map[string]int{}
	for _, b := range fr.scope.bindings[from:] {
		for _, c := range b.Cols {
			counts[c.Name]++
		}
	}
	merged := &binding{Name: strings.ToUpper(alias), delegate: map[string]*binding{}}
	for _, b := range fr.scope.bindings[from:] {
		for _, c := range b.Cols {
			if counts[c.Name] > 1 {
				continue // ambiguous bare name: only reachable via original qualifier
			}
			merged.Cols = append(merged.Cols, c)
			merged.delegate[c.Name] = b
		}
	}
	fr.scope.bindings = append(fr.scope.bindings, merged)
}
