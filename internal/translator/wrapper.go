package translator

import (
	"repro/internal/xquery"
)

// NullToken is the marker emitted for SQL NULL values in the text-encoded
// result format. Because real values pass through fn-bea:xml-escape (which
// rewrites '&' to '&amp;'), the raw token "&null;" can never be produced by
// data, making NULL distinguishable from the empty string. The paper's
// wrapper used plain "" for absent values; this marker is the one liberty
// taken, recorded in DESIGN.md, so that JDBC's wasNull contract works.
const NullToken = "&null;"

// wrapTextMode wraps the RECORDSET-building query in the §4 result-handling
// query: a fn:string-join over rows rendered as delimiter-separated text.
// Each row contributes the row delimiter, then its column values separated
// by the column delimiter, every value passing through
// fn-bea:serialize-atomic → fn-bea:xml-escape → fn-bea:if-empty exactly as
// the paper's generated wrapper does:
//
//	fn:string-join(
//	  let $actualQuery := <RECORDSET>{…}</RECORDSET>
//	  for $tokenQuery in $actualQuery/RECORD
//	  return (">", fn-bea:if-empty(fn-bea:xml-escape(
//	          fn-bea:serialize-atomic(fn:data($tokenQuery/COL))), "&null;"),
//	          "<", …)
//	, "")
func wrapTextMode(body *xquery.ElementCtor, cols []ResultColumn) xquery.Expr {
	const actualVar = "actualQuery"
	const tokenVar = "tokenQuery"

	var tokens []xquery.Expr
	for i, col := range cols {
		delim := ColumnDelimiter
		if i == 0 {
			delim = RowDelimiter
		}
		tokens = append(tokens, xquery.Str(delim), textValue(tokenVar, col))
	}

	rowsToText := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.Let{Var: actualVar, Expr: body},
			&xquery.For{Var: tokenVar, In: xquery.ChildPath(actualVar, "RECORD")},
		},
		Return: &xquery.Seq{Items: tokens},
	}

	return xquery.Call("fn:string-join", rowsToText, xquery.Str(""))
}

// textValue renders one column's serialize/escape/default pipeline.
func textValue(rowVar string, col ResultColumn) xquery.Expr {
	return xquery.Call("fn-bea:if-empty",
		xquery.Call("fn-bea:xml-escape",
			xquery.Call("fn-bea:serialize-atomic",
				xquery.Call("fn:data", xquery.ChildPath(rowVar, col.ElementName)))),
		xquery.Str(NullToken))
}
