package translator

import (
	"repro/internal/catalog"
	"repro/internal/qfront"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// typeInfo is the inferred datatype of a SQL expression (§3.5 v): the SQL
// type surfaced through result metadata, the corresponding XQuery atomic
// type, and nullability.
type typeInfo struct {
	SQL      catalog.SQLType
	X        xdm.AtomicType
	Nullable bool
	// Precision and Scale surface column facets (DECIMAL(p,s),
	// VARCHAR(n)) in result metadata; zero for computed expressions.
	Precision int
	Scale     int
}

func typeOfSQL(t catalog.SQLType, nullable bool) typeInfo {
	return typeInfo{SQL: t, X: t.Atomic(), Nullable: nullable}
}

var (
	tInteger = typeInfo{SQL: catalog.SQLInteger, X: xdm.TypeInteger}
	tDecimal = typeInfo{SQL: catalog.SQLDecimal, X: xdm.TypeDecimal}
	tDouble  = typeInfo{SQL: catalog.SQLDouble, X: xdm.TypeDouble}
	tVarchar = typeInfo{SQL: catalog.SQLVarchar, X: xdm.TypeString}
	tBoolean = typeInfo{SQL: catalog.SQLBoolean, X: xdm.TypeBoolean}
	tUnknown = typeInfo{SQL: catalog.SQLUnknown, X: xdm.TypeUntyped, Nullable: true}
)

// numericRank orders numeric SQL types for promotion: INTEGER < DECIMAL <
// DOUBLE (the SQL-92 rules of promotion and casting the paper applies
// leaf-to-root over the expression tree).
func numericRank(t catalog.SQLType) int {
	switch t {
	case catalog.SQLSmallint:
		return 0
	case catalog.SQLInteger:
		return 1
	case catalog.SQLDecimal:
		return 2
	case catalog.SQLDouble:
		return 3
	default:
		return -1
	}
}

// promoteNumeric combines two operand types under arithmetic.
func promoteNumeric(a, b typeInfo) typeInfo {
	ra, rb := numericRank(a.SQL), numericRank(b.SQL)
	winner := a
	if rb > ra {
		winner = b
	}
	if ra < 0 || rb < 0 {
		winner = tUnknown
	}
	winner.Nullable = a.Nullable || b.Nullable
	return winner
}

// xsName maps an xdm atomic type to the xs: constructor used in generated
// casts.
func xsName(t xdm.AtomicType) string { return t.String() }

// castTo wraps an expression in an xs: constructor cast when the target
// type is concrete, mirroring the paper's generated casts
// (xs:integer(10) in Example 8).
func castTo(e xquery.Expr, target xdm.AtomicType) xquery.Expr {
	if target == xdm.TypeUntyped {
		return e
	}
	// Avoid redundant double casts of the same target type.
	if c, ok := e.(*xquery.Cast); ok && c.Type == xsName(target) {
		return e
	}
	return &xquery.Cast{Type: xsName(target), Operand: e}
}

// typeFromTypeName maps a parsed SQL type (CAST target) to typeInfo,
// carrying declared precision and scale into result metadata.
func typeFromTypeName(tn qfront.TypeName) typeInfo {
	st := catalog.SQLTypeFromName(tn.Name)
	ti := typeInfo{SQL: st, X: st.Atomic(), Nullable: true}
	if tn.Precision > 0 {
		ti.Precision = tn.Precision
	}
	if tn.Scale > 0 {
		ti.Scale = tn.Scale
	}
	return ti
}
