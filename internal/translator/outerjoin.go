package translator

import (
	"strings"

	"repro/internal/qfront"
	"repro/internal/xquery"
)

// addOuterJoin renders LEFT/RIGHT/FULL OUTER JOIN with the paper's
// Example 10 pattern: the preserved side drives a for loop, the
// null-extended side becomes an XPath filter over its rows using the ON
// condition (with the null-extended side's columns referenced relatively),
// and an if (fn:empty(...)) then/else produces the padded or joined rows.
// The whole join materializes into a let-bound RECORDSET whose RECORD rows
// carry qualified column elements (CUSTOMERS.CUSTOMERID, PAYMENTS.CUSTID).
func (g *generator) addOuterJoin(j *qfront.JoinExpr, fr *fromResult, ctxID int) error {
	leftClauses, leftRows, leftBs, err := g.refRows(j.Left, fr.scope.parent, ctxID)
	if err != nil {
		return err
	}
	rightClauses, rightRows, rightBs, err := g.refRows(j.Right, fr.scope.parent, ctxID)
	if err != nil {
		return err
	}

	// Identify the preserved side (always emitted) and the null-extended
	// side (padded with NULLs when unmatched).
	preservedRows, nullRows := leftRows, rightRows
	preservedBs, nullBs := leftBs, rightBs
	if j.Type == qfront.JoinRightOuter {
		preservedRows, nullRows = rightRows, leftRows
		preservedBs, nullBs = rightBs, leftBs
	}

	pv := g.names.rowVar(ctxID, zoneFrom) // preserved-side row variable
	nv := g.names.rowVar(ctxID, zoneFrom) // null-side row variable (match branch)
	tv := g.names.tempVar(ctxID, zoneFrom)

	// ON condition for filtering null-side rows: preserved side bound to
	// $pv, null side context-relative (the paper's
	// [($var1FR2/CUSTOMERID = CUSTID)] shape).
	filterScope := &qscope{parent: fr.scope.parent}
	for _, b := range preservedBs {
		filterScope.add(b.withRowVar(pv))
	}
	for _, b := range nullBs {
		filterScope.add(b.asRelative())
	}
	cond, err := g.outerJoinCondition(j, filterScope, preservedBs, nullBs, pv)
	if err != nil {
		return err
	}

	// Output record construction, columns in the SQL's left-then-right
	// order regardless of which side is preserved.
	matchRecord := g.joinRecord(leftBs, rightBs, map[*binding]string{}, pv, nv, preservedBs)
	padRecord := g.joinRecordPreservedOnly(leftBs, rightBs, preservedBs, pv)

	loj := &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: pv, In: preservedRows},
			&xquery.Let{Var: tv, Expr: &xquery.Filter{Base: nullRows, Predicates: []xquery.Expr{cond}}},
		},
		Return: &xquery.If{
			Cond: xquery.Call("fn:empty", xquery.VarRef(tv)),
			Then: padRecord,
			Else: &xquery.FLWOR{
				Clauses: []xquery.Clause{&xquery.For{Var: nv, In: xquery.VarRef(tv)}},
				Return:  matchRecord,
			},
		},
	}

	rows := xquery.Expr(loj)
	if j.Type == qfront.JoinFullOuter {
		// FULL OUTER adds the anti-joined rows of the other side: rows of
		// the null-extended side with no preserved-side match.
		av := g.names.rowVar(ctxID, zoneFrom)
		ltv := g.names.tempVar(ctxID, zoneFrom)
		antiScope := &qscope{parent: fr.scope.parent}
		for _, b := range preservedBs {
			antiScope.add(b.asRelative())
		}
		for _, b := range nullBs {
			antiScope.add(b.withRowVar(av))
		}
		antiCond, err := g.outerJoinCondition(j, antiScope, nullBs, preservedBs, av)
		if err != nil {
			return err
		}
		anti := &xquery.FLWOR{
			Clauses: []xquery.Clause{
				&xquery.For{Var: av, In: nullRows},
				&xquery.Let{Var: ltv, Expr: &xquery.Filter{Base: preservedRows, Predicates: []xquery.Expr{antiCond}}},
				&xquery.Where{Cond: xquery.Call("fn:empty", xquery.VarRef(ltv))},
			},
			Return: g.joinRecordPreservedOnly(leftBs, rightBs, nullBs, av),
		}
		rows = &xquery.Seq{Items: []xquery.Expr{loj, anti}}
	}

	outTemp := g.names.tempVar(ctxID, zoneFrom)
	outVar := g.names.rowVar(ctxID, zoneFrom)
	fr.clauses = append(fr.clauses, leftClauses...)
	fr.clauses = append(fr.clauses, rightClauses...)
	fr.clauses = append(fr.clauses,
		&xquery.Let{Var: outTemp, Expr: recordsetCtor(rows)},
		&xquery.For{Var: outVar, In: xquery.ChildPath(outTemp, "RECORD")},
	)

	// Bindings over the materialized join rows. Null-extended columns are
	// nullable (both sides for FULL OUTER).
	before := len(fr.scope.bindings)
	for _, b := range leftBs {
		nullable := j.Type == qfront.JoinRightOuter || j.Type == qfront.JoinFullOuter
		fr.scope.add(joinOutputBinding(b, outVar, nullable))
	}
	for _, b := range rightBs {
		nullable := j.Type == qfront.JoinLeftOuter || j.Type == qfront.JoinFullOuter
		fr.scope.add(joinOutputBinding(b, outVar, nullable))
	}
	if j.Alias != "" {
		g.aliasJoinBindings(fr, before, j.Alias)
	}
	return nil
}

// outerJoinCondition translates the join condition in the given scope,
// handling ON, USING and NATURAL forms. The left/right split for
// USING/NATURAL is done against the two binding sets, whichever access
// mode they carry in the scope.
func (g *generator) outerJoinCondition(j *qfront.JoinExpr, sc *qscope, sideA, sideB []*binding, rowVarA string) (xquery.Expr, error) {
	switch {
	case j.Cond != nil:
		cond, _, err := g.genExpr(j.Cond, sc, nil)
		return cond, err
	case len(j.Using) > 0 || j.Natural:
		cols := j.Using
		aScope := &qscope{bindings: sc.bindings[:len(sideA)]}
		bScope := &qscope{bindings: sc.bindings[len(sideA):]}
		if j.Natural {
			cols = commonColumns(aScope, bScope)
			if len(cols) == 0 {
				return nil, semErr(j.Pos, "NATURAL JOIN has no common columns")
			}
		}
		return g.equiCondition(j, cols, aScope, bScope)
	default:
		return nil, semErr(j.Pos, "outer join requires a condition")
	}
}

// qualifiedName is the output element name for a join record column.
func qualifiedName(b *binding, c colInfo) string {
	if b.Name == "" {
		return c.Name
	}
	return b.Name + "." + c.Name
}

// joinRecord builds the matched-row RECORD: all left then right columns,
// each taken from its side's row variable.
func (g *generator) joinRecord(leftBs, rightBs []*binding, _ map[*binding]string, pv, nv string, preservedBs []*binding) *xquery.ElementCtor {
	preserved := map[*binding]bool{}
	for _, b := range preservedBs {
		preserved[b] = true
	}
	rec := &xquery.ElementCtor{Name: "RECORD"}
	emit := func(b *binding, v string) {
		bound := b.withRowVar(v)
		for _, c := range b.Cols {
			rec.Content = append(rec.Content,
				condElem(qualifiedName(b, c), xquery.Call("fn:data", bound.access(c)), c.Nullable))
		}
	}
	for _, b := range leftBs {
		if b.aliasOnly {
			continue
		}
		if preserved[b] {
			emit(b, pv)
		} else {
			emit(b, nv)
		}
	}
	for _, b := range rightBs {
		if b.aliasOnly {
			continue
		}
		if preserved[b] {
			emit(b, pv)
		} else {
			emit(b, nv)
		}
	}
	return rec
}

// joinRecordPreservedOnly builds the unmatched-row RECORD: only the
// emitted side's columns appear; the other side's elements are absent,
// which is how SQL NULL travels in the row encoding.
func (g *generator) joinRecordPreservedOnly(leftBs, rightBs []*binding, emitBs []*binding, v string) *xquery.ElementCtor {
	emitSet := map[*binding]bool{}
	for _, b := range emitBs {
		emitSet[b] = true
	}
	rec := &xquery.ElementCtor{Name: "RECORD"}
	for _, b := range append(append([]*binding{}, leftBs...), rightBs...) {
		if !emitSet[b] || b.aliasOnly {
			continue
		}
		bound := b.withRowVar(v)
		for _, c := range b.Cols {
			rec.Content = append(rec.Content,
				condElem(qualifiedName(b, c), xquery.Call("fn:data", bound.access(c)), c.Nullable))
		}
	}
	return rec
}

// joinOutputBinding exposes one original range variable over the
// materialized join rows.
func joinOutputBinding(b *binding, outVar string, forceNullable bool) *binding {
	out := &binding{Name: b.Name, RowVar: outVar}
	for _, c := range b.Cols {
		nc := c
		if !b.aliasOnly {
			nc.Accessor = qualifiedName(b, c)
		}
		if forceNullable {
			nc.Nullable = true
		}
		out.Cols = append(out.Cols, nc)
	}
	return out
}

// refRows renders a table reference as a filterable rows expression:
// tables are bare function calls, derived tables and nested joins
// materialize behind a let. It returns the clauses to prepend, the rows
// expression, and the (unbound) bindings describing the row layout.
func (g *generator) refRows(ref qfront.TableRef, parent *qscope, ctxID int) ([]xquery.Clause, xquery.Expr, []*binding, error) {
	switch ref := ref.(type) {
	case *qfront.TableName:
		meta, err := g.lookupTable(ref)
		if err != nil {
			return nil, nil, nil, err
		}
		f := meta.Function
		prefix := g.prefixFor(f)
		cols := make([]colInfo, len(f.Columns))
		for i, c := range f.Columns {
			cols[i] = colInfo{
				Name:      strings.ToUpper(c.Name),
				SQL:       c.Type,
				Type:      c.Type.Atomic(),
				Nullable:  c.Nullable,
				Precision: c.Precision,
				Scale:     c.Scale,
				Accessor:  c.Name,
			}
		}
		b := &binding{Name: strings.ToUpper(ref.RangeVar()), Cols: cols}
		return nil, xquery.Call(prefix + ":" + f.Name), []*binding{b}, nil

	case *qfront.DerivedTable:
		rows, cols, err := g.genSelectStmt(ref.Query, parent)
		if err != nil {
			return nil, nil, nil, err
		}
		tempVar := g.names.tempVar(ctxID, zoneFrom)
		b := &binding{Name: strings.ToUpper(ref.Alias)}
		for i, c := range cols {
			name := c.Label
			if len(ref.ColumnAliases) > 0 {
				if len(ref.ColumnAliases) != len(cols) {
					return nil, nil, nil, semErr(ref.Pos, "derived column list has %d names for %d columns", len(ref.ColumnAliases), len(cols))
				}
				name = strings.ToUpper(ref.ColumnAliases[i])
			}
			b.Cols = append(b.Cols, colInfo{
				Name:     strings.ToUpper(name),
				SQL:      c.SQL,
				Type:     c.Type,
				Nullable: c.Nullable,
				Accessor: c.ElementName,
			})
		}
		clauses := []xquery.Clause{&xquery.Let{Var: tempVar, Expr: recordsetCtor(rows)}}
		return clauses, xquery.ChildPath(tempVar, "RECORD"), []*binding{b}, nil

	case *qfront.JoinExpr:
		return g.nestedJoinRows(ref, parent, ctxID)

	default:
		return nil, nil, nil, semErr(ref.Position(), "unsupported table reference %T", ref)
	}
}

// nestedJoinRows materializes a join that appears as the operand of
// another join: the join is generated into its own single-item FROM
// pipeline, wrapped in a RECORDSET let, and exposed as qualified RECORD
// rows.
func (g *generator) nestedJoinRows(j *qfront.JoinExpr, parent *qscope, ctxID int) ([]xquery.Clause, xquery.Expr, []*binding, error) {
	inner := &fromResult{scope: &qscope{parent: parent}}
	if err := g.addJoin(j, inner, ctxID); err != nil {
		return nil, nil, nil, err
	}
	// Build the materialization FLWOR: the join's own clauses, its
	// conjuncts as a where, and a RECORD of every visible column.
	clauses := inner.clauses
	if cond := andAll(inner.conjuncts); cond != nil {
		clauses = append(clauses, &xquery.Where{Cond: cond})
	}
	rec := &xquery.ElementCtor{Name: "RECORD"}
	var outBs []*binding
	for _, b := range inner.scope.bindings {
		if b.delegate != nil {
			continue // alias-merged view; physical columns come from the originals
		}
		ob := &binding{Name: b.Name}
		for _, c := range b.Cols {
			outName := qualifiedName(b, c)
			rec.Content = append(rec.Content,
				condElem(outName, xquery.Call("fn:data", b.access(c)), c.Nullable))
			nc := c
			nc.Accessor = outName
			ob.Cols = append(ob.Cols, nc)
		}
		outBs = append(outBs, ob)
	}
	// An aliased nested join exposes itself under the alias with bare
	// column names.
	if j.Alias != "" {
		merged := &binding{Name: strings.ToUpper(j.Alias)}
		counts := map[string]int{}
		for _, b := range outBs {
			for _, c := range b.Cols {
				counts[c.Name]++
			}
		}
		for _, b := range outBs {
			for _, c := range b.Cols {
				if counts[c.Name] == 1 {
					merged.Cols = append(merged.Cols, c)
				}
			}
		}
		merged.aliasOnly = true
		outBs = append(outBs, merged)
	}
	flwor := &xquery.FLWOR{Clauses: clauses, Return: rec}
	tempVar := g.names.tempVar(ctxID, zoneFrom)
	lets := []xquery.Clause{&xquery.Let{Var: tempVar, Expr: recordsetCtor(flwor)}}
	return lets, xquery.ChildPath(tempVar, "RECORD"), outBs, nil
}

// andAll folds conjuncts with and.
func andAll(conjuncts []xquery.Expr) xquery.Expr {
	var out xquery.Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &xquery.Binary{Op: "and", Left: out, Right: c}
		}
	}
	return out
}
