package translator

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

func newTestTranslator() *Translator {
	return New(catalog.Demo())
}

func translate(t *testing.T, sql string) *Result {
	t.Helper()
	res, err := newTestTranslator().Translate(sql)
	if err != nil {
		t.Fatalf("Translate(%q): %v", sql, err)
	}
	return res
}

func assertContains(t *testing.T, xq string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(xq, w) {
			t.Fatalf("generated XQuery missing %q:\n%s", w, xq)
		}
	}
}

// TestGoldenExample6 reproduces the paper's Examples 5/6: SELECT * FROM
// CUSTOMERS becomes a schema import, a for over the function, and a
// RECORDSET/RECORD constructor with fn:data projections.
func TestGoldenExample6(t *testing.T) {
	res := translate(t, "SELECT * FROM CUSTOMERS")
	xq := res.XQuery()
	assertContains(t, xq,
		"import schema namespace ns0 =",
		`"ld:TestDataServices/CUSTOMERS" at`,
		`"ld:TestDataServices/schemas/CUSTOMERS.xsd";`,
		"<RECORDSET>",
		"for $var1FR1 in ns0:CUSTOMERS()",
		"return",
		"<RECORD>",
		"<CUSTOMERID>{fn:data($var1FR1/CUSTOMERID)}</CUSTOMERID>",
		"<CUSTOMERNAME>{fn:data($var1FR1/CUSTOMERNAME)}</CUSTOMERNAME>",
		"</RECORD>",
		"</RECORDSET>",
	)
	// Wildcard expansion (stage two, Figure 6) produced all four columns.
	if len(res.Columns) != 4 {
		t.Fatalf("columns = %d, want 4", len(res.Columns))
	}
	if res.Columns[0].Label != "CUSTOMERID" || res.Columns[0].Type != catalog.SQLInteger {
		t.Fatalf("column 0 = %+v", res.Columns[0])
	}
}

// TestGoldenExample4 reproduces Example 4's aliasing: SELECT CUSTOMERID ID
// renames the output element to the SQL alias.
func TestGoldenExample4(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS")
	assertContains(t, res.XQuery(),
		"<ID>{fn:data($var1FR1/CUSTOMERID)}</ID>",
		"<NAME>{fn:data($var1FR1/CUSTOMERNAME)}</NAME>",
	)
	if res.Columns[0].Label != "ID" || res.Columns[1].Label != "NAME" {
		t.Fatalf("labels = %+v", res.Columns)
	}
}

// TestGoldenExample8 reproduces Example 7/8: a FROM subquery becomes a
// let-bound RECORDSET, the outer query iterates its RECORD rows, and the
// literal in the WHERE gets a cast (xs:integer(10)).
func TestGoldenExample8(t *testing.T) {
	res := translate(t, `SELECT INFO.ID, INFO.NAME
		FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS) AS INFO
		WHERE INFO.ID > 10`)
	xq := res.XQuery()
	assertContains(t, xq,
		"let $tempvar1FR2 :=",
		"<RECORDSET>",
		"for $var2FR1 in ns0:CUSTOMERS()",
		"<ID>{fn:data($var2FR1/CUSTOMERID)}</ID>",
		"for $var1FR3 in $tempvar1FR2/RECORD",
		"where ($var1FR3/ID > xs:integer(10))",
		"<INFO.ID>{fn:data($var1FR3/ID)}</INFO.ID>",
		"<INFO.NAME>{fn:data($var1FR3/NAME)}</INFO.NAME>",
	)
	// Output element names preserve qualification; labels are bare.
	if res.Columns[0].ElementName != "INFO.ID" || res.Columns[0].Label != "ID" {
		t.Fatalf("column 0 = %+v", res.Columns[0])
	}
}

// TestGoldenExample10 reproduces the left outer join translation: the
// null-extended side becomes an XPath filter with a relative path, and an
// if (fn:empty(...)) then/else pads unmatched rows.
func TestGoldenExample10(t *testing.T) {
	res := translate(t, `SELECT CUSTOMERS.CUSTOMERID, PAYMENTS.PAYMENT
		FROM CUSTOMERS LEFT OUTER JOIN PAYMENTS
		ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID`)
	xq := res.XQuery()
	assertContains(t, xq,
		"import schema namespace ns0 =",
		"import schema namespace ns1 =",
		"ns1:PAYMENTS()[($var1FR1/CUSTOMERID = CUSTID)]",
		"if (fn:empty($tempvar1FR3)) then",
		"else",
		"<CUSTOMERS.CUSTOMERID>",
		"<PAYMENTS.PAYMENT>",
	)
	if !res.Columns[1].Nullable {
		t.Fatal("outer-joined column must be nullable")
	}
}

// TestGoldenExample12 reproduces the complex grouped query shape: the join
// materializes behind a let, grouping uses the BEA group-by extension with
// partition and key variables, and aggregates apply over the partition.
func TestGoldenExample12(t *testing.T) {
	res := translate(t, `SELECT CUSTOMERS.CUSTOMERID, COUNT(*) CNT
		FROM CUSTOMERS, PO_CUSTOMERS
		WHERE CUSTOMERS.CUSTOMERID = PO_CUSTOMERS.CUSTOMERID
		GROUP BY CUSTOMERS.CUSTOMERID
		ORDER BY 2 DESC`)
	xq := res.XQuery()
	assertContains(t, xq,
		"for $var1FR1 in ns0:CUSTOMERS()",
		"for $var1FR2 in ns1:PO_CUSTOMERS()",
		"where ($var1FR1/CUSTOMERID = $var1FR2/CUSTOMERID)",
		"let $tempvar1GB3 :=",
		"group $var1GB4 as $var1Partition5 by",
		"fn:count($var1Partition5)",
		"order by",
		"descending",
	)
	if res.Columns[1].Label != "CNT" || res.Columns[1].Type != catalog.SQLInteger {
		t.Fatalf("count column = %+v", res.Columns[1])
	}
}

// TestGoldenSection4Wrapper reproduces §4's text-mode wrapper: string-join
// over rows of delimiter-prefixed, escaped, serialized values.
func TestGoldenSection4Wrapper(t *testing.T) {
	tr := New(catalog.Demo())
	tr.Options.Mode = ModeText
	res, err := tr.Translate("SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	xq := res.XQuery()
	assertContains(t, xq,
		"fn:string-join(",
		"let $actualQuery :=",
		"for $tokenQuery in $actualQuery/RECORD",
		`">"`,
		`"<"`,
		"fn-bea:if-empty(fn-bea:xml-escape(fn-bea:serialize-atomic(fn:data($tokenQuery/CUSTOMERID)))",
	)
}

func TestGoldenQualifiedWildcard(t *testing.T) {
	res := translate(t, "SELECT C.*, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID")
	if len(res.Columns) != 5 {
		t.Fatalf("columns = %d", len(res.Columns))
	}
	assertContains(t, res.XQuery(), "<C.CUSTOMERID>", "<P.PAYMENT>")
}

func TestGoldenInnerJoinFlattens(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERS.CUSTOMERNAME FROM CUSTOMERS INNER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID")
	xq := res.XQuery()
	assertContains(t, xq,
		"for $var1FR1 in ns0:CUSTOMERS()",
		"for $var1FR2 in ns1:PAYMENTS()",
		"where ($var1FR1/CUSTOMERID = $var1FR2/CUSTID)",
	)
	if strings.Contains(xq, "PAYMENTS()[") {
		t.Fatal("inner join should not use the outer-join filter pattern")
	}
}

func TestGoldenDistinct(t *testing.T) {
	res := translate(t, "SELECT DISTINCT CITY FROM CUSTOMERS")
	assertContains(t, res.XQuery(), "fn-bea:distinct-rows(")
}

func TestGoldenUnion(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS")
	assertContains(t, res.XQuery(), "fn-bea:distinct-rows(")
	// Right side renamed to left's element names.
	if res.Columns[0].ElementName != "CUSTOMERID" {
		t.Fatalf("cols = %+v", res.Columns)
	}
}

func TestGoldenUnionAllKeepsDuplicates(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERID FROM CUSTOMERS UNION ALL SELECT CUSTID FROM PAYMENTS")
	if strings.Contains(res.XQuery(), "distinct-rows") {
		t.Fatal("UNION ALL must not deduplicate")
	}
}

func TestGoldenExceptIntersect(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERID FROM CUSTOMERS EXCEPT SELECT CUSTID FROM PAYMENTS")
	assertContains(t, res.XQuery(), "fn-bea:rows-except(")
	res = translate(t, "SELECT CUSTOMERID FROM CUSTOMERS INTERSECT SELECT CUSTID FROM PAYMENTS")
	assertContains(t, res.XQuery(), "fn-bea:rows-intersect(")
}

func TestGoldenLikeAndBetween(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERNAME LIKE 'A%' AND CUSTOMERID BETWEEN 5 AND 10")
	assertContains(t, res.XQuery(),
		"fn-bea:sql-like(fn:data($var1FR1/CUSTOMERNAME)",
		">= xs:integer(5)",
		"<= xs:integer(10)",
	)
}

func TestGoldenIsNull(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERID FROM CUSTOMERS WHERE CITY IS NULL")
	assertContains(t, res.XQuery(), "fn:empty(fn:data($var1FR1/CITY))")
	res = translate(t, "SELECT CUSTOMERID FROM CUSTOMERS WHERE CITY IS NOT NULL")
	assertContains(t, res.XQuery(), "fn:not(fn:empty(fn:data($var1FR1/CITY)))")
}

func TestGoldenExistsAndIn(t *testing.T) {
	res := translate(t, `SELECT CUSTOMERNAME FROM CUSTOMERS C
		WHERE EXISTS (SELECT 1 FROM PAYMENTS WHERE PAYMENTS.CUSTID = C.CUSTOMERID)
		AND C.CUSTOMERID IN (1, 2, 3)`)
	assertContains(t, res.XQuery(),
		"fn:exists(",
		"= (xs:integer(1), xs:integer(2), xs:integer(3))",
	)
}

func TestGoldenParameters(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ? AND CITY = ?")
	if res.ParamCount != 2 {
		t.Fatalf("param count = %d", res.ParamCount)
	}
	if res.ParamTypes[0] != catalog.SQLInteger || res.ParamTypes[1] != catalog.SQLVarchar {
		t.Fatalf("param types = %v", res.ParamTypes)
	}
	assertContains(t, res.XQuery(), "xs:integer($p1)", "xs:string($p2)")
}

func TestGoldenCaseExpr(t *testing.T) {
	res := translate(t, `SELECT CASE WHEN CUSTOMERID > 100 THEN 'big' ELSE 'small' END TIER FROM CUSTOMERS`)
	assertContains(t, res.XQuery(), "if (", `"big"`, `"small"`, "<TIER>")
}

func TestGoldenScalarFunctions(t *testing.T) {
	res := translate(t, "SELECT UPPER(CUSTOMERNAME), LENGTH(CITY), SUBSTRING(CUSTOMERNAME FROM 1 FOR 3) FROM CUSTOMERS")
	assertContains(t, res.XQuery(),
		"fn:upper-case(fn:data($var1FR1/CUSTOMERNAME))",
		"fn:string-length(fn:data($var1FR1/CITY))",
		"fn:substring(fn:data($var1FR1/CUSTOMERNAME), 1, 3)",
	)
	if res.Columns[0].ElementName != "EXPR1" {
		t.Fatalf("generated name = %+v", res.Columns[0])
	}
}

func TestGoldenCastExpr(t *testing.T) {
	res := translate(t, "SELECT CAST(CUSTOMERID AS VARCHAR(10)) FROM CUSTOMERS")
	assertContains(t, res.XQuery(), "xs:string(xs:integer(fn:data($var1FR1/CUSTOMERID)))")
	if res.Columns[0].Type != catalog.SQLVarchar {
		t.Fatalf("cast type = %v", res.Columns[0].Type)
	}
}

func TestGoldenOrderByTyped(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID DESC")
	assertContains(t, res.XQuery(), "order by xs:integer(fn:data($var1FR1/CUSTOMERID)) descending")
}

func TestGoldenHaving(t *testing.T) {
	res := translate(t, `SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 2`)
	assertContains(t, res.XQuery(), "where (fn:count($var1Partition", "> xs:integer(2)")
}

func TestGoldenAggregatesOverPartition(t *testing.T) {
	res := translate(t, `SELECT CITY, SUM(CUSTOMERID), AVG(CUSTOMERID), MIN(CUSTOMERID), MAX(CUSTOMERID), COUNT(CITY)
		FROM CUSTOMERS GROUP BY CITY`)
	xq := res.XQuery()
	assertContains(t, xq,
		"fn-bea:sql-sum(fn:data($var1Partition",
		"fn-bea:sql-avg(",
		"fn-bea:sql-min(",
		"fn-bea:sql-max(",
		"fn:count(fn:data(",
	)
	// Aggregate results are nullable except COUNT.
	if res.Columns[1].Nullable != true || res.Columns[5].Nullable != false {
		t.Fatalf("nullability: %+v", res.Columns)
	}
}

func TestGoldenCountDistinct(t *testing.T) {
	res := translate(t, "SELECT COUNT(DISTINCT CITY) FROM CUSTOMERS")
	assertContains(t, res.XQuery(), "fn:count(fn:distinct-values(")
}

func TestGoldenImplicitGroup(t *testing.T) {
	res := translate(t, "SELECT COUNT(*), MAX(CUSTOMERID) FROM CUSTOMERS")
	xq := res.XQuery()
	assertContains(t, xq, "let $var1Partition")
	if strings.Contains(xq, "group $") {
		t.Fatal("implicit single group must not emit a group by clause")
	}
}

func TestGoldenStoredProcedureRejectedAsTable(t *testing.T) {
	_, err := newTestTranslator().Translate("SELECT * FROM getCustomerById")
	if err == nil || !strings.Contains(err.Error(), "stored procedure") {
		t.Fatalf("err = %v", err)
	}
}

func TestSchemaImportDeduplication(t *testing.T) {
	res := translate(t, "SELECT A.CUSTOMERID, B.CUSTOMERID FROM CUSTOMERS A, CUSTOMERS B")
	if len(res.Query.Prolog.SchemaImports) != 1 {
		t.Fatalf("imports = %+v", res.Query.Prolog.SchemaImports)
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT NOPE FROM CUSTOMERS", "unknown column NOPE"},
		{"SELECT CUSTOMERS.NOPE FROM CUSTOMERS", "does not exist"},
		{"SELECT X.CUSTOMERID FROM CUSTOMERS", "unknown table or alias X"},
		{"SELECT * FROM NO_SUCH_TABLE", "no such table"},
		{"SELECT CUSTOMERID FROM CUSTOMERS, PAYMENTS WHERE PAYMENTID = PAYMENTID AND CUSTOMERID > 0 AND CUSTOMERID = CUSTID AND CUSTOMERID IN (SELECT CUSTOMERID FROM CUSTOMERS C2, PO_CUSTOMERS P2)", "ambiguous"},
		{"SELECT CUSTOMERID FROM CUSTOMERS GROUP BY CITY", "must appear in the GROUP BY clause"},
		{"SELECT CITY FROM CUSTOMERS WHERE COUNT(*) > 1", "not allowed in WHERE"},
		{"SELECT COUNT(SUM(CUSTOMERID)) FROM CUSTOMERS", "cannot be nested"},
		{"SELECT * FROM CUSTOMERS GROUP BY CITY", "not allowed with GROUP BY"},
		{"SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID, PAYMENT FROM PAYMENTS", "different column counts"},
		{"SELECT CUSTOMERID FROM CUSTOMERS ORDER BY 5", "not in the select list"},
		{"SELECT CUSTOMERID FROM CUSTOMERS C, CUSTOMERS C", "duplicate range variable"},
		{"SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTOMERID, CITY FROM CUSTOMERS)", "exactly one column"},
		{"SELECT (SELECT CUSTOMERID, CITY FROM CUSTOMERS) FROM CUSTOMERS", "exactly one column"},
		{"SELECT CUSTOMERID FROM CUSTOMERS GROUP BY COUNT(*)", "not allowed in GROUP BY"},
	}
	for _, c := range cases {
		_, err := newTestTranslator().Translate(c.sql)
		if err == nil {
			t.Errorf("Translate(%q) should fail", c.sql)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Translate(%q) error = %q, want substring %q", c.sql, err, c.want)
		}
	}
}

// TestVariableNamingScheme checks the paper's §3.5(iv) naming convention:
// var + context id + zone + unique number.
func TestVariableNamingScheme(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERID FROM CUSTOMERS")
	assertContains(t, res.XQuery(), "$var1FR1")
	res = translate(t, "SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO")
	xq := res.XQuery()
	assertContains(t, xq, "$tempvar1FR2", "$var2FR1", "$var1FR3")
	_ = xq
}
