package translator_test

// Tests for extension features beyond strict SQL-92: FETCH FIRST n ROWS
// ONLY (SQL:2008 top-N, common in reporting tools) and the LEFT/RIGHT
// string functions.

import (
	"strings"
	"testing"
)

func TestExecFetchFirst(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID FETCH FIRST 2 ROWS ONLY")
	if got := joined(t, rows, 0); got != "Joe,Sue" {
		t.Fatalf("got %s", got)
	}
	// FETCH NEXT ROW ONLY defaults to one row.
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID DESC FETCH NEXT ROW ONLY")
	if got := joined(t, rows, 0); got != "Eve" {
		t.Fatalf("got %s", got)
	}
	// Limit larger than the result is a no-op.
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS FETCH FIRST 100 ROWS ONLY")
	if rows.Len() != 5 {
		t.Fatalf("rows = %d", rows.Len())
	}
	// Zero rows.
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS FETCH FIRST 0 ROWS ONLY")
	if rows.Len() != 0 {
		t.Fatalf("rows = %d", rows.Len())
	}
}

func TestExecFetchFirstOverSetOp(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS
		ORDER BY CUSTOMERID DESC FETCH FIRST 2 ROWS ONLY`)
	if got := joined(t, rows, 0); got != "99,5" {
		t.Fatalf("got %s", got)
	}
}

func TestExecFetchFirstTopNAggregates(t *testing.T) {
	// The classic reporting query: top spender.
	rows := run(t, `SELECT CUSTID, SUM(PAYMENT) AS TOTAL FROM PAYMENTS
		GROUP BY CUSTID ORDER BY 2 DESC FETCH FIRST 1 ROWS ONLY`)
	if got := joined(t, rows, 0); got != "1" {
		t.Fatalf("top spender = %s", got)
	}
}

func TestGoldenFetchFirstUsesSubsequence(t *testing.T) {
	tr := newTranslator()
	res, err := tr.Translate("SELECT CUSTOMERID FROM CUSTOMERS FETCH FIRST 3 ROWS ONLY")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.XQuery(), "fn:subsequence(") {
		t.Fatalf("xquery:\n%s", res.XQuery())
	}
}

func TestExecLeftRightFunctions(t *testing.T) {
	rows := run(t, "SELECT LEFT(CUSTOMERNAME, 2), RIGHT(CUSTOMERNAME, 2) FROM CUSTOMERS WHERE CUSTOMERID = 1")
	rows.Next()
	l, _, _ := rows.String(0)
	r, _, _ := rows.String(1)
	if l != "Jo" || r != "oe" {
		t.Fatalf("left/right = %q %q", l, r)
	}
	// n larger than the string returns the whole string.
	rows = run(t, "SELECT RIGHT(CUSTOMERNAME, 99) FROM CUSTOMERS WHERE CUSTOMERID = 2")
	rows.Next()
	if s, _, _ := rows.String(0); s != "Sue" {
		t.Fatalf("right overlong = %q", s)
	}
}

func TestFetchFirstParseErrors(t *testing.T) {
	bad := []string{
		"SELECT A FROM T FETCH 3 ROWS ONLY",           // missing FIRST/NEXT
		"SELECT A FROM T FETCH FIRST 3 ROWS",          // missing ONLY
		"SELECT A FROM T FETCH FIRST THREE ROWS ONLY", // non-integer
	}
	for _, sql := range bad {
		if _, err := newTranslator().Translate(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestExecOrderedDerivedTableTopN(t *testing.T) {
	// ORDER BY + FETCH FIRST inside a derived table (a common reporting
	// idiom beyond strict SQL-92): top-2 payments, then aggregated.
	rows := run(t, `SELECT SUM(T.PAYMENT) FROM
		(SELECT PAYMENT FROM PAYMENTS ORDER BY PAYMENT DESC FETCH FIRST 2 ROWS ONLY) AS T`)
	rows.Next()
	f, _, _ := rows.Float64(0)
	if f != 150.75 { // 100.50 + 50.25
		t.Fatalf("sum = %v", f)
	}
}

func TestExecAliasedOuterJoin(t *testing.T) {
	rows := run(t, `SELECT J.CUSTOMERNAME, J.PAYMENT
		FROM (CUSTOMERS LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID) AS J
		WHERE J.PAYMENT IS NULL ORDER BY J.CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Ann,Eve" {
		t.Fatalf("got %s", got)
	}
}
