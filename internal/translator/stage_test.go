package translator

import (
	"context"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/xquery"
)

// TestStageOneASTFigure5 checks the stage-one artifact for the paper's
// running example (Figure 5): SELECT * FROM CUSTOMERS parses to a query
// spec whose select list still holds the unexpanded column wildcard, under
// a single query context.
func TestStageOneASTFigure5(t *testing.T) {
	stmt, err := sqlparser.Parse("SELECT * FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := stmt.Body.(*sqlparser.QuerySpec)
	if !ok {
		t.Fatalf("body = %T", stmt.Body)
	}
	if len(spec.Items) != 1 || !spec.Items[0].Wildcard {
		t.Fatalf("stage one must keep the wildcard: %+v", spec.Items)
	}
	root := CaptureContexts(stmt)
	if root.Count() != 1 || root.Children[0].ID != 1 {
		t.Fatalf("contexts = %+v", root)
	}
}

// TestStageTwoWildcardExpansionFigure6 checks the stage-two artifact
// (Figure 6): the column wildcard is replaced by one column node per
// metadata column, using metadata fetched from the catalog.
func TestStageTwoWildcardExpansionFigure6(t *testing.T) {
	g := newGenerator(context.Background(), catalog.Demo(), Options{}, CaptureContexts(mustParseStmt(t, "SELECT * FROM CUSTOMERS")))
	fr, err := g.buildFrom(mustParseStmt(t, "SELECT * FROM CUSTOMERS").Body.(*sqlparser.QuerySpec).From, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	items := g.expandWildcard(fr.scope)
	var names []string
	for _, it := range items {
		names = append(names, it.ElementName)
	}
	want := "CUSTOMERID,CUSTOMERNAME,CITY,SIGNUPDATE"
	if strings.Join(names, ",") != want {
		t.Fatalf("expanded columns = %v, want %s", names, want)
	}
	// Each expanded item resolves to an XPath over the row variable.
	if xquery.String(items[0].Expr) != "fn:data($var1FR1/CUSTOMERID)" {
		t.Fatalf("accessor = %s", xquery.String(items[0].Expr))
	}
}

// TestStageTwoQualifiedExpansion: with two tables in scope, expansion
// qualifies element names the way the paper's multi-table examples do.
func TestStageTwoQualifiedExpansion(t *testing.T) {
	stmt := mustParseStmt(t, "SELECT * FROM CUSTOMERS, PAYMENTS")
	g := newGenerator(context.Background(), catalog.Demo(), Options{}, CaptureContexts(stmt))
	fr, err := g.buildFrom(stmt.Body.(*sqlparser.QuerySpec).From, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	items := g.expandWildcard(fr.scope)
	if len(items) != 8 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].ElementName != "CUSTOMERS.CUSTOMERID" || items[4].ElementName != "PAYMENTS.PAYMENTID" {
		t.Fatalf("qualification wrong: %s, %s", items[0].ElementName, items[4].ElementName)
	}
	// Labels stay bare for JDBC.
	if items[0].Label != "CUSTOMERID" {
		t.Fatalf("label = %s", items[0].Label)
	}
}

// TestRSNMappingFigure3 exercises the Figure 3 query shape — three tables,
// an inner join, two subqueries and a union — and checks that each SQL
// "view" abstraction (the paper's resultset nodes) produced its XQuery
// realization: subqueries as let-bound RECORDSETs, the join as flattened
// for clauses, the union as a distinct-rows merge.
func TestRSNMappingFigure3(t *testing.T) {
	res := translate(t, `
		SELECT S1.CUSTOMERID FROM
			(SELECT C.CUSTOMERID FROM CUSTOMERS C INNER JOIN PO_CUSTOMERS O
			 ON C.CUSTOMERID = O.CUSTOMERID) AS S1
		UNION
		SELECT S2.CUSTID FROM (SELECT CUSTID FROM PAYMENTS) AS S2`)
	xq := res.XQuery()

	// Query RSNs (subqueries) → let-bound RECORDSET views.
	if got := strings.Count(xq, "let $tempvar"); got < 2 {
		t.Fatalf("expected 2 let-bound subquery views, found %d:\n%s", got, xq)
	}
	// Join RSN → flattened double for + where.
	assertContains(t, xq,
		"for $var2FR1 in ns0:CUSTOMERS()",
		"for $var2FR2 in ns1:PO_CUSTOMERS()",
		"where ($var2FR1/CUSTOMERID = $var2FR2/CUSTOMERID)",
	)
	// Set-operation RSN → distinct-rows over the two operand sequences.
	assertContains(t, xq, "fn-bea:distinct-rows(")
	// Table RSNs → one schema import per distinct function namespace.
	if len(res.Query.Prolog.SchemaImports) != 3 {
		t.Fatalf("imports = %d", len(res.Query.Prolog.SchemaImports))
	}
}

// TestStageThreeClauseMappingFigure7 verifies the clause-level mapping of
// Figure 7: FROM→for, WHERE→where, SELECT→return, ORDER BY→order by.
func TestStageThreeClauseMappingFigure7(t *testing.T) {
	res := translate(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID > 5 ORDER BY CUSTOMERNAME")
	xq := res.XQuery()
	forIdx := strings.Index(xq, "for $")
	whereIdx := strings.Index(xq, "where ")
	orderIdx := strings.Index(xq, "order by ")
	returnIdx := strings.Index(xq, "return")
	if forIdx < 0 || whereIdx < 0 || orderIdx < 0 || returnIdx < 0 {
		t.Fatalf("missing clause in:\n%s", xq)
	}
	if !(forIdx < whereIdx && whereIdx < orderIdx && orderIdx < returnIdx) {
		t.Fatalf("clause order wrong: for=%d where=%d order=%d return=%d", forIdx, whereIdx, orderIdx, returnIdx)
	}
}

func mustParseStmt(t *testing.T, sql string) *sqlparser.SelectStmt {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}
