package translator

import (
	"strings"

	"repro/internal/qfront"
	"repro/internal/xquery"
)

// aggEnv is the translation environment of a grouped query's SELECT,
// HAVING and ORDER BY: column references must resolve to grouping keys,
// and aggregate calls render over the partition variable (the paper's
// Example 12 uses BEA's group-by extension exactly this way).
type aggEnv struct {
	partitionVar string
	keys         []groupKeyInfo
	// rowScope builds a scope over the materialized input rows bound to
	// the given row variable — used to translate aggregate arguments
	// per-partition-member.
	rowScope func(rowVar string) *qscope
	// dummyScope resolves references purely for accessor matching.
	dummyScope *qscope
}

// groupKeyInfo records one GROUP BY key: its canonical SQL text, the
// materialized-row accessor when the key is a plain column, the XQuery
// variable bound to the key value, and its type.
type groupKeyInfo struct {
	text     string
	accessor string
	varName  string
	t        typeInfo
}

// genGroupedSpec is the grouped path: materialize the FROM/WHERE input as
// RECORD rows behind a let ($inter in Example 12), group with the BEA
// extension, then project keys and partition aggregates.
func (g *generator) genGroupedSpec(spec *qfront.QuerySpec, fr *fromResult, where xquery.Expr, orderBy []qfront.OrderItem, ctxID int) (xquery.Expr, []outCol, error) {
	// Materialize the input rows with every visible column.
	interItems := g.expandWildcard(fr.scope)
	if len(interItems) == 0 {
		return nil, nil, semErr(spec.Pos, "grouped query over a FROM clause with no columns")
	}
	innerClauses := append([]xquery.Clause{}, fr.clauses...)
	if where != nil {
		innerClauses = append(innerClauses, &xquery.Where{Cond: where})
	}
	inner := &xquery.FLWOR{Clauses: innerClauses, Return: recordCtor(interItems)}

	interVar := g.names.tempVar(ctxID, zoneGroupBy)
	rowVar := g.names.rowVar(ctxID, zoneGroupBy)
	partVar := g.names.partitionVar(ctxID)

	// Scope factory over the materialized rows.
	rowScope := func(v string) *qscope {
		sc := &qscope{parent: fr.scope.parent}
		byOwner := map[string]*binding{}
		for i, b := range fr.scope.bindings {
			if b.aliasOnly {
				continue
			}
			nb := &binding{Name: b.Name, RowVar: v}
			byOwner[ownerKey(b, i)] = nb
			sc.add(nb)
		}
		// Attach columns using the materialized element names.
		idx := 0
		for i, b := range fr.scope.bindings {
			if b.aliasOnly {
				continue
			}
			nb := byOwner[ownerKey(b, i)]
			for _, c := range b.Cols {
				nc := c
				nc.Accessor = interItems[idx].ElementName
				idx++
				nb.Cols = append(nb.Cols, nc)
			}
		}
		return sc
	}

	env := &aggEnv{
		partitionVar: partVar,
		rowScope:     rowScope,
		dummyScope:   rowScope("__dummy__"),
	}

	// Translate GROUP BY keys over the materialized rows.
	groupScope := rowScope(rowVar)
	var keys []xquery.GroupKey
	for _, keyExpr := range spec.GroupBy {
		if qfront.ContainsAggregate(keyExpr) {
			return nil, nil, semErr(keyExpr.Position(), "aggregate functions are not allowed in GROUP BY")
		}
		xe, ti, err := g.genExpr(keyExpr, groupScope, nil)
		if err != nil {
			return nil, nil, err
		}
		varName := g.names.rowVar(ctxID, zoneGroupBy)
		info := groupKeyInfo{
			text:    strings.ToUpper(keyExpr.SQL()),
			varName: varName,
			t:       ti,
		}
		if ref, ok := keyExpr.(*qfront.ColumnRef); ok {
			if r, err := env.dummyScope.resolve(ref); err == nil {
				info.accessor = r.Col.Accessor
			}
		}
		env.keys = append(env.keys, info)
		keys = append(keys, xquery.GroupKey{Expr: atomized(typedExpr{E: xe, T: ti}), Var: varName})
	}

	// Assemble the outer FLWOR clauses.
	clauses := []xquery.Clause{&xquery.Let{Var: interVar, Expr: recordsetCtor(inner)}}
	if len(keys) > 0 {
		clauses = append(clauses,
			&xquery.For{Var: rowVar, In: xquery.ChildPath(interVar, "RECORD")},
			&xquery.GroupBy{InVar: rowVar, PartitionVar: partVar, Keys: keys},
		)
	} else {
		// Implicit single group: the whole input is one partition and the
		// query returns exactly one row, even over empty input (SQL's
		// COUNT(*) = 0 case).
		clauses = append(clauses, &xquery.Let{Var: partVar, Expr: xquery.ChildPath(interVar, "RECORD")})
	}

	items, cols, err := g.genSelectItems(spec, fr.scope, env)
	if err != nil {
		return nil, nil, err
	}

	if spec.Having != nil {
		cond, _, err := g.genExpr(spec.Having, fr.scope, env)
		if err != nil {
			return nil, nil, err
		}
		clauses = append(clauses, &xquery.Where{Cond: cond})
	}
	if len(orderBy) > 0 {
		specs, err := g.orderSpecs(orderBy, items, fr.scope, env)
		if err != nil {
			return nil, nil, err
		}
		clauses = append(clauses, &xquery.OrderByClause{Specs: specs})
	}

	rows := xquery.Expr(&xquery.FLWOR{Clauses: clauses, Return: recordCtor(items)})
	if spec.Distinct {
		rows = xquery.Call("fn-bea:distinct-rows", rows)
	}
	return rows, cols, nil
}

// ownerKey distinguishes equally named (or unnamed) bindings when mapping
// the original scope onto the materialized-row scope.
func ownerKey(b *binding, i int) string {
	return b.Name + "#" + string(rune('0'+i%10)) + string(rune('0'+i/10))
}

// resolveGroupedColumn maps a column reference in a grouped context onto
// its GROUP BY key, enforcing the SQL-92 rule the paper's §3.4.3 example
// describes (SELECT EMPNO … GROUP BY EMPNAME is semantically invalid).
func (g *generator) resolveGroupedColumn(ref *qfront.ColumnRef, env *aggEnv) (xquery.Expr, typeInfo, error) {
	canon := strings.ToUpper(ref.SQL())
	for _, k := range env.keys {
		if k.text == canon {
			return xquery.VarRef(k.varName), k.t, nil
		}
	}
	// Accessor-level match: GROUP BY CUSTOMERS.CUSTOMERID vs SELECT
	// CUSTOMERID (or vice versa).
	if r, err := env.dummyScope.resolve(ref); err == nil {
		for _, k := range env.keys {
			if k.accessor != "" && k.accessor == r.Col.Accessor {
				return xquery.VarRef(k.varName), k.t, nil
			}
		}
	}
	return nil, typeInfo{}, semErr(ref.Pos,
		"column %s must appear in the GROUP BY clause or be used in an aggregate function", ref.SQL())
}

// genAggregate renders an aggregate call over the partition variable.
func (g *generator) genAggregate(call *qfront.FuncCall, env *aggEnv, ctxID int) (xquery.Expr, typeInfo, error) {
	spec := aggFuncs[call.Name]
	if call.Star {
		// COUNT(*) counts partition members.
		return xquery.Call("fn:count", xquery.VarRef(env.partitionVar)), tInteger, nil
	}
	if len(call.Args) != 1 {
		return nil, typeInfo{}, semErr(call.Pos, "%s takes exactly one argument", call.Name)
	}
	arg := call.Args[0]
	if qfront.ContainsAggregate(arg) {
		return nil, typeInfo{}, semErr(call.Pos, "aggregate functions cannot be nested")
	}

	var values xquery.Expr
	var argT typeInfo
	if ref, ok := arg.(*qfront.ColumnRef); ok {
		// Simple column: $part/ACC skips NULL rows naturally.
		partScope := env.rowScope(env.partitionVar)
		r, err := partScope.resolve(ref)
		if err != nil {
			return nil, typeInfo{}, err
		}
		values = xquery.Call("fn:data", r.Expr)
		argT = typeInfo{SQL: r.Col.SQL, X: r.Col.Type, Nullable: r.Col.Nullable,
			Precision: r.Col.Precision, Scale: r.Col.Scale}
	} else {
		// Computed argument: evaluate per partition member.
		itemVar := g.names.rowVar(ctxID, zoneGroupBy)
		itemScope := env.rowScope(itemVar)
		xe, ti, err := g.genExpr(arg, itemScope, nil)
		if err != nil {
			return nil, typeInfo{}, err
		}
		values = &xquery.FLWOR{
			Clauses: []xquery.Clause{&xquery.For{Var: itemVar, In: xquery.VarRef(env.partitionVar)}},
			Return:  atomized(typedExpr{E: xe, T: ti}),
		}
		argT = ti
	}
	if call.Distinct {
		values = xquery.Call("fn:distinct-values", values)
	}
	return xquery.Call(spec.fn, values), spec.result(argT), nil
}

// matchKeyText resolves an expression against the GROUP BY keys by
// canonical SQL text, returning the key variable when the whole expression
// is itself a grouping key.
func (env *aggEnv) matchKeyText(e qfront.Expr) (xquery.Expr, typeInfo, bool) {
	canon := strings.ToUpper(e.SQL())
	for _, k := range env.keys {
		if k.text == canon {
			return xquery.VarRef(k.varName), k.t, true
		}
	}
	return nil, typeInfo{}, false
}
