package translator

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestKernelImportBoundary pins the translation kernel's front-end
// neutrality structurally: no translator source file may import the SQL
// parser except sqldefault.go, the one compatibility shim that wires the
// default front end into the legacy Translate entry points. Everything
// else consumes the shared qfront AST, so a new query language plugs in
// without touching the kernel.
func TestKernelImportBoundary(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if path == "repro/internal/sqlparser" && name != "sqldefault.go" {
				t.Errorf("%s imports %s: the translator kernel must stay front-end agnostic (only sqldefault.go may bind the SQL parser)", name, path)
			}
		}
	}
}
