package translator_test

// The serializer/parser coherence suite: every query in the SQL-92
// conformance matrix is translated, serialized to XQuery text, re-parsed,
// and (a) must re-serialize to byte-identical text (fixed point), and
// (b) must execute to the same result as the original AST. This closes the
// loop on the textual interface the paper's driver/server boundary uses:
// the driver ships XQuery *text*, so text must carry the full semantics.

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

func TestTranslationSerializeParseFixedPoint(t *testing.T) {
	for _, mode := range []translator.ResultMode{translator.ModeXML, translator.ModeText} {
		for _, c := range conformanceMatrix {
			tr := translator.New(catalog.Demo())
			tr.Options.Mode = mode
			res, err := tr.Translate(c.sql)
			if err != nil {
				t.Fatalf("%s: %v", c.feature, err)
			}
			text1 := res.XQuery()
			parsed, err := xquery.Parse(text1)
			if err != nil {
				t.Fatalf("%s (mode %v): generated XQuery failed to parse: %v\n%s", c.feature, mode, err, text1)
			}
			text2 := (&xquery.Query{Prolog: parsed.Prolog, Body: parsed.Body}).Serialize()
			if text1 != text2 {
				t.Fatalf("%s (mode %v): serialize∘parse not a fixed point:\n--- generated ---\n%s\n--- reparsed ---\n%s",
					c.feature, mode, text1, text2)
			}
		}
	}
}

func TestParsedTranslationExecutesIdentically(t *testing.T) {
	engine := fixtureEngine()
	for _, c := range conformanceMatrix {
		tr := translator.New(catalog.Demo())
		res, err := tr.Translate(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.feature, err)
		}
		parsed, err := xquery.Parse(res.XQuery())
		if err != nil {
			t.Fatalf("%s: parse: %v", c.feature, err)
		}
		externals := make([]string, res.ParamCount)
		for i := range externals {
			externals[i] = fmt.Sprintf("p%d", i+1)
		}
		if err := engine.Check(parsed, externals); err != nil {
			t.Fatalf("%s: static check rejected generated query: %v", c.feature, err)
		}
		ext := map[string]xdm.Sequence{}
		for i := 0; i < res.ParamCount; i++ {
			ext[fmt.Sprintf("p%d", i+1)] = intSeq(1)
		}
		want, err := engine.EvalWith(res.Query, ext)
		if err != nil {
			t.Fatalf("%s: eval original: %v", c.feature, err)
		}
		got, err := engine.EvalWith(parsed, ext)
		if err != nil {
			t.Fatalf("%s: eval parsed: %v", c.feature, err)
		}
		if !xdm.DeepEqual(want, got) {
			t.Fatalf("%s: parsed query result differs\noriginal: %s\nparsed:   %s",
				c.feature, xdm.MarshalSequence(want), xdm.MarshalSequence(got))
		}
	}
}
