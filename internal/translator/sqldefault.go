package translator

// This file is the translator's only tie to the SQL-92 front end: the
// historical Translate* entry points, which fix the dialect to SQL. The
// kernel itself (every other non-test file in this package) consumes
// only the frontend-neutral AST in internal/qfront — a boundary test
// (TestKernelImportBoundary) pins this file as the sole exception.

import (
	"context"

	"repro/internal/obsv"
	"repro/internal/sqlparser"
)

// Translate runs all three stages over a SQL SELECT statement.
func (t *Translator) Translate(sql string) (*Result, error) {
	return t.TranslateTraced(sql, nil)
}

// TranslateContext is Translate under a cancelable context: stage two's
// metadata fetches observe cancellation and deadline expiry.
func (t *Translator) TranslateContext(ctx context.Context, sql string) (*Result, error) {
	return t.TranslateTracedContext(ctx, sql, nil)
}

// TranslateTraced is Translate with stage observation: each pipeline stage
// (lex, parse, semantic-validate, restructure, generate, serialize) is
// recorded as a span on tr with wall time, sizes, and stage detail. A nil
// trace is valid and costs nothing beyond the untraced path.
func (t *Translator) TranslateTraced(sql string, tr *obsv.Trace) (*Result, error) {
	return t.TranslateTracedContext(context.Background(), sql, tr)
}

// TranslateTracedContext combines context propagation with stage tracing —
// the driver's SQL entry point. Other dialects enter through
// TranslateFrontend.
func (t *Translator) TranslateTracedContext(ctx context.Context, sql string, tr *obsv.Trace) (*Result, error) {
	return t.TranslateFrontend(ctx, sqlparser.Front{}, sql, tr)
}
