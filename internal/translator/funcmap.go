package translator

import (
	"repro/internal/catalog"
	"repro/internal/qfront"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// typedExpr is a translated argument: the XQuery expression plus its
// inferred type.
type typedExpr struct {
	E xquery.Expr
	T typeInfo
}

// funcSpec describes one entry of the preconfigured SQL→XQuery function map
// (§3.5 iii): argument arity, the translation, and the result type rule.
type funcSpec struct {
	minArgs int
	maxArgs int // -1 unbounded
	gen     func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error)
}

// atomized wraps a column path in fn:data so string/number functions see
// atomic values rather than element nodes.
func atomized(a typedExpr) xquery.Expr {
	if p, ok := a.E.(*xquery.Path); ok {
		return xquery.Call("fn:data", p)
	}
	if p, ok := a.E.(*xquery.RelPath); ok {
		return xquery.Call("fn:data", p)
	}
	return a.E
}

// stringArg renders an argument as xs:string input.
func stringArg(a typedExpr) xquery.Expr {
	e := atomized(a)
	if a.T.X == xdm.TypeString {
		return e
	}
	return xquery.Call("fn:string", e)
}

// simpleMap builds a funcSpec that maps 1:1 onto an XQuery function with
// atomized arguments and a fixed result type.
func simpleMap(xqName string, result typeInfo) func(*qfront.FuncCall, []typedExpr) (xquery.Expr, typeInfo, error) {
	return func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		out := make([]xquery.Expr, len(args))
		for i, a := range args {
			out[i] = atomized(a)
		}
		res := result
		for _, a := range args {
			res.Nullable = res.Nullable || a.T.Nullable
		}
		return xquery.Call(xqName, out...), res, nil
	}
}

// stringMap is simpleMap with arguments coerced to strings.
func stringMap(xqName string, result typeInfo) func(*qfront.FuncCall, []typedExpr) (xquery.Expr, typeInfo, error) {
	return func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		out := make([]xquery.Expr, len(args))
		for i, a := range args {
			out[i] = stringArg(a)
		}
		res := result
		for _, a := range args {
			res.Nullable = res.Nullable || a.T.Nullable
		}
		return xquery.Call(xqName, out...), res, nil
	}
}

// numericMap preserves the numeric type of the first argument.
func numericMap(xqName string) func(*qfront.FuncCall, []typedExpr) (xquery.Expr, typeInfo, error) {
	return func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		out := make([]xquery.Expr, len(args))
		for i, a := range args {
			out[i] = atomized(a)
		}
		res := args[0].T
		if numericRank(res.SQL) < 0 {
			res = tDouble
			res.Nullable = args[0].T.Nullable
		}
		return xquery.Call(xqName, out...), res, nil
	}
}

// scalarFuncs is the preconfigured SQL→XQuery function map. EXTRACT fields
// arrive as EXTRACT_<FIELD> from the parser's special-form handling.
var scalarFuncs = map[string]funcSpec{
	"UPPER":            {1, 1, stringMap("fn:upper-case", tVarchar)},
	"LOWER":            {1, 1, stringMap("fn:lower-case", tVarchar)},
	"CONCAT":           {2, -1, stringMap("fn:concat", tVarchar)},
	"LENGTH":           {1, 1, stringMap("fn:string-length", tInteger)},
	"CHAR_LENGTH":      {1, 1, stringMap("fn:string-length", tInteger)},
	"CHARACTER_LENGTH": {1, 1, stringMap("fn:string-length", tInteger)},
	"SUBSTRING": {2, 3, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		out := []xquery.Expr{stringArg(args[0])}
		for _, a := range args[1:] {
			out = append(out, atomized(a))
		}
		res := tVarchar
		res.Nullable = args[0].T.Nullable
		return xquery.Call("fn:substring", out...), res, nil
	}},
	"POSITION": {2, 2, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		res := tInteger
		res.Nullable = args[0].T.Nullable || args[1].T.Nullable
		return xquery.Call("fn-bea:position", stringArg(args[0]), stringArg(args[1])), res, nil
	}},
	"LOCATE": {2, 2, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		res := tInteger
		res.Nullable = args[0].T.Nullable || args[1].T.Nullable
		return xquery.Call("fn-bea:position", stringArg(args[0]), stringArg(args[1])), res, nil
	}},
	"LEFT": {2, 2, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		res := tVarchar
		res.Nullable = args[0].T.Nullable || args[1].T.Nullable
		return xquery.Call("fn:substring", stringArg(args[0]), xquery.Num("1"), atomized(args[1])), res, nil
	}},
	"RIGHT": {2, 2, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		// RIGHT(s, n) → substring(s, string-length(s) - n + 1); a start
		// at or below zero yields the whole string, matching SQL when n
		// exceeds the length.
		res := tVarchar
		res.Nullable = args[0].T.Nullable || args[1].T.Nullable
		str := stringArg(args[0])
		start := &xquery.Binary{
			Op: "+",
			Left: &xquery.Binary{
				Op:    "-",
				Left:  xquery.Call("fn:string-length", str),
				Right: atomized(args[1]),
			},
			Right: xquery.Num("1"),
		}
		return xquery.Call("fn:substring", str, start), res, nil
	}},
	"TRIM":  {1, 2, trimMap("fn-bea:trim")},
	"LTRIM": {1, 2, trimMap("fn-bea:trim-left")},
	"RTRIM": {1, 2, trimMap("fn-bea:trim-right")},
	"REPEAT": {2, 2, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		res := tVarchar
		res.Nullable = args[0].T.Nullable || args[1].T.Nullable
		return xquery.Call("fn-bea:repeat", stringArg(args[0]), atomized(args[1])), res, nil
	}},

	"ABS":     {1, 1, numericMap("fn:abs")},
	"FLOOR":   {1, 1, numericMap("fn:floor")},
	"CEILING": {1, 1, numericMap("fn:ceiling")},
	"CEIL":    {1, 1, numericMap("fn:ceiling")},
	"ROUND":   {1, 1, numericMap("fn:round")},
	"MOD": {2, 2, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		res := promoteNumeric(args[0].T, args[1].T)
		return &xquery.Binary{Op: "mod", Left: atomized(args[0]), Right: atomized(args[1])}, res, nil
	}},

	"COALESCE": {1, -1, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		// COALESCE(a, b, c) → fn-bea:if-empty(a, fn-bea:if-empty(b, c)).
		expr := atomized(args[len(args)-1])
		for i := len(args) - 2; i >= 0; i-- {
			expr = xquery.Call("fn-bea:if-empty", atomized(args[i]), expr)
		}
		res := args[0].T
		res.Nullable = true
		for _, a := range args {
			if !a.T.Nullable {
				res.Nullable = false // a non-nullable arm guarantees a value
			}
		}
		return expr, res, nil
	}},
	"NULLIF": {2, 2, func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		res := args[0].T
		res.Nullable = true
		return &xquery.If{
			Cond: &xquery.Binary{Op: "=", Left: atomized(args[0]), Right: atomized(args[1])},
			Then: &xquery.EmptySeq{},
			Else: atomized(args[0]),
		}, res, nil
	}},

	"CURRENT_DATE":      {0, 0, simpleMap("fn:current-date", typeInfo{SQL: catalog.SQLDate, X: xdm.TypeDate})},
	"CURRENT_TIME":      {0, 0, simpleMap("fn:current-time", typeInfo{SQL: catalog.SQLTime, X: xdm.TypeTime})},
	"CURRENT_TIMESTAMP": {0, 0, simpleMap("fn:current-dateTime", typeInfo{SQL: catalog.SQLTimestamp, X: xdm.TypeDateTime})},

	"EXTRACT_YEAR":   {1, 1, extractMap("year")},
	"EXTRACT_MONTH":  {1, 1, extractMap("month")},
	"EXTRACT_DAY":    {1, 1, extractMap("day")},
	"EXTRACT_HOUR":   {1, 1, extractMap("hours")},
	"EXTRACT_MINUTE": {1, 1, extractMap("minutes")},
	"EXTRACT_SECOND": {1, 1, extractMap("seconds")},
}

func trimMap(xqName string) func(*qfront.FuncCall, []typedExpr) (xquery.Expr, typeInfo, error) {
	return func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		out := []xquery.Expr{stringArg(args[0])}
		if len(args) == 2 {
			out = append(out, stringArg(args[1]))
		}
		res := tVarchar
		res.Nullable = args[0].T.Nullable
		return xquery.Call(xqName, out...), res, nil
	}
}

// extractMap picks the fn:*-from-* accessor by the argument's type.
func extractMap(part string) func(*qfront.FuncCall, []typedExpr) (xquery.Expr, typeInfo, error) {
	return func(call *qfront.FuncCall, args []typedExpr) (xquery.Expr, typeInfo, error) {
		var name string
		switch args[0].T.X {
		case xdm.TypeTime:
			name = "fn:" + part + "-from-time"
		case xdm.TypeDateTime:
			name = "fn:" + part + "-from-dateTime"
		default:
			name = "fn:" + part + "-from-date"
		}
		res := tInteger
		res.Nullable = args[0].T.Nullable
		return xquery.Call(name, atomized(args[0])), res, nil
	}
}

// aggSpec maps a SQL aggregate to its XQuery rendering over a partition
// value sequence (fn-bea:sql-* variants implement SQL's NULL-on-empty).
type aggSpec struct {
	fn     string // applied over the (atomized) value sequence
	result func(arg typeInfo) typeInfo
}

var aggFuncs = map[string]aggSpec{
	"COUNT": {fn: "fn:count", result: func(typeInfo) typeInfo { return tInteger }},
	"SUM": {fn: "fn-bea:sql-sum", result: func(a typeInfo) typeInfo {
		r := a
		if numericRank(r.SQL) < 0 {
			r = tDouble
		}
		r.Nullable = true
		return r
	}},
	"AVG": {fn: "fn-bea:sql-avg", result: func(a typeInfo) typeInfo {
		r := tDecimal
		if a.SQL == catalog.SQLDouble {
			r = tDouble
		}
		r.Nullable = true
		return r
	}},
	"MIN": {fn: "fn-bea:sql-min", result: func(a typeInfo) typeInfo { a.Nullable = true; return a }},
	"MAX": {fn: "fn-bea:sql-max", result: func(a typeInfo) typeInfo { a.Nullable = true; return a }},
}
