package translator

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/qfront"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// colInfo is one column visible through a range binding, with the
// information stage two needs for validation and typing and the accessor
// stage three needs for XPath generation (§3.5 items (ii), (iv), (v)).
type colInfo struct {
	Name     string // column name, uppercase
	SQL      catalog.SQLType
	Type     xdm.AtomicType
	Nullable bool
	// Precision and Scale carry DECIMAL(p,s)/VARCHAR(n) facets through to
	// result metadata; zero when unspecified or computed.
	Precision int
	Scale     int
	// Accessor is the child element name holding this column's value in
	// the bound row element ($rowVar/Accessor). For base tables this is
	// the column name; for materialized rows it may be qualified
	// ("CUSTOMERS.CUSTOMERID").
	Accessor string
}

// binding is one range variable of a query scope: a name (range variable),
// the columns it exposes, and the XQuery row variable its rows are bound
// to. A binding resolves a column reference to an XPath, which is exactly
// the paper's "references to columns in a table become XPaths" (§3.5 iv).
type binding struct {
	// Name is the SQL range variable (alias or table name), uppercase;
	// empty for bindings only reachable via unqualified references.
	Name   string
	Cols   []colInfo
	RowVar string
	// delegate routes column access through another binding; used by
	// aliased parenthesized joins ("(A JOIN B …) AS P"), whose merged
	// binding exposes bare column names but whose values still live in
	// the underlying table bindings' row variables.
	delegate map[string]*binding
	// relative makes access produce context-relative paths (CUSTID
	// instead of $v/CUSTID) — how the ON condition's null-extended side is
	// referenced inside the paper's XPath filter (Example 10).
	relative bool
	// aliasOnly marks a name-overlay binding (an aliased join's merged
	// view): it participates in resolution but not in record emission,
	// since its columns physically belong to other bindings.
	aliasOnly bool
}

// withRowVar clones the binding bound to a concrete row variable.
func (b *binding) withRowVar(v string) *binding {
	cp := *b
	cp.RowVar = v
	cp.relative = false
	return &cp
}

// asRelative clones the binding with context-relative access.
func (b *binding) asRelative() *binding {
	cp := *b
	cp.relative = true
	return &cp
}

func (b *binding) column(name string) (colInfo, bool) {
	for _, c := range b.Cols {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return colInfo{}, false
}

// access builds the XPath for a column through this binding.
func (b *binding) access(c colInfo) xquery.Expr {
	if b.delegate != nil {
		if ob, ok := b.delegate[c.Name]; ok && ob != b {
			return ob.access(c)
		}
	}
	if b.relative {
		return &xquery.RelPath{Steps: []xquery.PathStep{{Name: c.Accessor}}}
	}
	return xquery.ChildPath(b.RowVar, c.Accessor)
}

// resolved is the result of resolving a column reference: the access
// expression plus the column's metadata.
type resolved struct {
	Expr xquery.Expr
	Col  colInfo
}

// qscope is the name-resolution scope of one query block. Parent chains
// implement correlated subqueries: an unresolved name escalates outward,
// per SQL-92 scoping.
type qscope struct {
	parent   *qscope
	bindings []*binding
}

func (s *qscope) add(b *binding) { s.bindings = append(s.bindings, b) }

// resolve resolves a (possibly qualified) column reference per SQL-92
// rules: qualified references must name a visible range variable;
// unqualified references must be unambiguous at their innermost resolving
// scope.
func (s *qscope) resolve(ref *qfront.ColumnRef) (resolved, error) {
	for scope := s; scope != nil; scope = scope.parent {
		if ref.Qualifier != "" {
			for _, b := range scope.bindings {
				if strings.EqualFold(b.Name, ref.Qualifier) {
					c, ok := b.column(ref.Column)
					if !ok {
						return resolved{}, semErr(ref.Pos, "column %s does not exist in %s", ref.Column, ref.Qualifier)
					}
					return resolved{Expr: b.access(c), Col: c}, nil
				}
			}
			continue // qualifier may name an outer range variable
		}
		var hits []resolved
		var owners []string
		seen := map[*binding]bool{}
		for _, b := range scope.bindings {
			if c, ok := b.column(ref.Column); ok {
				// An aliased join's merged binding delegates to the
				// physical binding; when both are visible, the column is
				// one column, not an ambiguity.
				owner := b
				if b.delegate != nil {
					if ob, ok := b.delegate[c.Name]; ok {
						owner = ob
					}
				}
				if seen[owner] {
					continue
				}
				seen[owner] = true
				hits = append(hits, resolved{Expr: b.access(c), Col: c})
				name := b.Name
				if name == "" {
					name = "<unnamed>"
				}
				owners = append(owners, name)
			}
		}
		switch len(hits) {
		case 1:
			return hits[0], nil
		case 0:
			continue
		default:
			return resolved{}, semErr(ref.Pos, "column reference %s is ambiguous (found in %s)",
				ref.Column, strings.Join(owners, ", "))
		}
	}
	if ref.Qualifier != "" {
		return resolved{}, semErr(ref.Pos, "unknown table or alias %s", ref.Qualifier)
	}
	return resolved{}, semErr(ref.Pos, "unknown column %s", ref.Column)
}

// allColumns lists every (binding, column) pair of the innermost scope in
// declaration order — wildcard expansion order.
func (s *qscope) allColumns() []struct {
	B *binding
	C colInfo
} {
	var out []struct {
		B *binding
		C colInfo
	}
	for _, b := range s.bindings {
		for _, c := range b.Cols {
			out = append(out, struct {
				B *binding
				C colInfo
			}{b, c})
		}
	}
	return out
}

// bindingByName finds a range variable in the innermost scope.
func (s *qscope) bindingByName(name string) (*binding, bool) {
	for _, b := range s.bindings {
		if strings.EqualFold(b.Name, name) {
			return b, true
		}
	}
	return nil, false
}

// nameGen produces the paper's variable naming scheme (§3.5 iv):
// var{contextID}{zone}{n} for row variables and tempvar{contextID}{zone}{n}
// for materialized intermediates, where the zone is a window on the SQL
// query (FR = FROM, GB = GROUP BY, …).
type nameGen struct {
	n int
}

// Zones (query windows) used in generated variable names.
const (
	zoneFrom    = "FR"
	zoneGroupBy = "GB"
	zoneWhere   = "WH"
)

func (g *nameGen) rowVar(ctxID int, zone string) string {
	g.n++
	return fmt.Sprintf("var%d%s%d", ctxID, zone, g.n)
}

func (g *nameGen) tempVar(ctxID int, zone string) string {
	g.n++
	return fmt.Sprintf("tempvar%d%s%d", ctxID, zone, g.n)
}

func (g *nameGen) partitionVar(ctxID int) string {
	g.n++
	return fmt.Sprintf("var%dPartition%d", ctxID, g.n)
}
