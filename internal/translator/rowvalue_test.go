package translator_test

// SQL-92 row value constructor tests: comparisons expand column-wise,
// orderings expand lexicographically, and multi-column IN membership works
// against both lists and subqueries.

import (
	"testing"
)

func TestExecRowValueEquality(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE (CUSTOMERID, CITY) = (1, 'Springfield')")
	if got := joined(t, rows, 0); got != "Joe" {
		t.Fatalf("got %s", got)
	}
	// One component mismatching fails the whole row.
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE (CUSTOMERID, CITY) = (1, 'Riverton')")
	if rows.Len() != 0 {
		t.Fatalf("rows = %d", rows.Len())
	}
}

func TestExecRowValueInequality(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE (CUSTOMERID, CITY) <> (1, 'Springfield') AND CITY IS NOT NULL
		ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Sue,Bob,Eve" {
		t.Fatalf("got %s", got)
	}
}

func TestExecRowValueLexicographicOrdering(t *testing.T) {
	// (CITY, CUSTOMERID) > ('Springfield', 1): Springfield/4 qualifies by
	// the second component; cities sorting after Springfield none exist;
	// Riverton and Lakeside sort before.
	rows := run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE (CITY, CUSTOMERID) > ('Springfield', 1) ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Bob" {
		t.Fatalf("got %s", got)
	}
	rows = run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE (CITY, CUSTOMERID) < ('Springfield', 4) ORDER BY CUSTOMERID`)
	// Joe (Springfield,1) qualifies via second component; Sue (Riverton)
	// and Eve (Lakeside) via first; Ann's NULL city is unknown.
	if got := joined(t, rows, 0); got != "Joe,Sue,Eve" {
		t.Fatalf("got %s", got)
	}
}

func TestExecRowValueInList(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE (CUSTOMERID, CITY) IN ((1, 'Springfield'), (2, 'Riverton')) ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Joe,Sue" {
		t.Fatalf("got %s", got)
	}
}

func TestExecRowValueInSubquery(t *testing.T) {
	// Customers whose (id, 'OPEN') pair appears among open orders.
	rows := run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE (CUSTOMERID, 'OPEN') IN (SELECT CUSTOMERID, STATUS FROM PO_CUSTOMERS)
		ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Joe,Sue" {
		t.Fatalf("got %s", got)
	}
	rows = run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE (CUSTOMERID, 'OPEN') NOT IN (SELECT CUSTOMERID, STATUS FROM PO_CUSTOMERS)
		ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Ann,Bob,Eve" {
		t.Fatalf("got %s", got)
	}
}

func TestRowValueErrors(t *testing.T) {
	bad := []struct{ sql, want string }{
		{"SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID, CITY) = 1", "compared with a scalar"},
		{"SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID, CITY) = (1, 'x', 'y')", "different degrees"},
		{"SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID, CITY) IN (SELECT CUSTID FROM PAYMENTS)", "degree"},
		{"SELECT 1 FROM CUSTOMERS WHERE (CUSTOMERID, CITY) IN (1, 2)", "must contain row values"},
	}
	for _, c := range bad {
		_, err := newTranslator().Translate(c.sql)
		if err == nil {
			t.Errorf("%q should fail", c.sql)
			continue
		}
		if !contains(err.Error(), c.want) {
			t.Errorf("%q: error %q missing %q", c.sql, err, c.want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
