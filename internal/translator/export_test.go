package translator

// Test-only exports: the funcmap sweep iterates the live maps so a new
// entry without test coverage fails the build's tests, not code review.

func ScalarFuncNames() []string {
	names := make([]string, 0, len(scalarFuncs))
	for name := range scalarFuncs {
		names = append(names, name)
	}
	return names
}

func AggFuncNames() []string {
	names := make([]string, 0, len(aggFuncs))
	for name := range aggFuncs {
		names = append(names, name)
	}
	return names
}
