package translator_test

// End-to-end semantic tests: every test translates SQL, executes the
// generated XQuery on the engine (the DSP-server stand-in), decodes the
// result set, and checks that the answer is what SQL-92 says it should be.
// This exercises the paper's correctness goal (§3.2 i): "the XQuery must do
// what the SQL query would have done".

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/resultset"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// fixtureEngine builds a small hand-written dataset whose query answers
// are computable by inspection.
//
//	CUSTOMERS: (1,Joe,Springfield,2005-01-10) (2,Sue,Riverton,2004-06-01)
//	           (3,Ann,NULL,NULL) (4,Bob,Springfield,2003-03-15)
//	           (5,Eve,Lakeside,2005-11-30)
//	PAYMENTS:  (1,1,100.50) (2,1,50.25) (3,2,20.00) (4,4,10.00) (5,99,5.00)
//	PO_CUSTOMERS: (5001,1,OPEN,300.00) (5002,1,CLOSED,150.00)
//	              (5003,2,OPEN,75.50) (5004,3,SHIPPED,20.00)
func fixtureEngine() *xqeval.Engine {
	e := xqeval.New()
	cust := func(id int, name, city, signup string) *xdm.Element {
		r := xdm.NewElement("CUSTOMERS")
		r.AddChild(xdm.NewTextElement("CUSTOMERID", itoa(id)))
		r.AddChild(xdm.NewTextElement("CUSTOMERNAME", name))
		if city != "" {
			r.AddChild(xdm.NewTextElement("CITY", city))
		}
		if signup != "" {
			r.AddChild(xdm.NewTextElement("SIGNUPDATE", signup))
		}
		return r
	}
	pay := func(id, custID int, amount string) *xdm.Element {
		r := xdm.NewElement("PAYMENTS")
		r.AddChild(xdm.NewTextElement("PAYMENTID", itoa(id)))
		r.AddChild(xdm.NewTextElement("CUSTID", itoa(custID)))
		r.AddChild(xdm.NewTextElement("PAYMENT", amount))
		r.AddChild(xdm.NewTextElement("PAYDATE", "2005-06-01"))
		return r
	}
	order := func(id, custID int, status, total string) *xdm.Element {
		r := xdm.NewElement("PO_CUSTOMERS")
		r.AddChild(xdm.NewTextElement("ORDERID", itoa(id)))
		r.AddChild(xdm.NewTextElement("CUSTOMERID", itoa(custID)))
		r.AddChild(xdm.NewTextElement("ORDERDATE", "2005-05-05"))
		r.AddChild(xdm.NewTextElement("STATUS", status))
		r.AddChild(xdm.NewTextElement("TOTAL", total))
		return r
	}
	e.RegisterRows("ld:TestDataServices/CUSTOMERS", "CUSTOMERS", []*xdm.Element{
		cust(1, "Joe", "Springfield", "2005-01-10"),
		cust(2, "Sue", "Riverton", "2004-06-01"),
		cust(3, "Ann", "", ""),
		cust(4, "Bob", "Springfield", "2003-03-15"),
		cust(5, "Eve", "Lakeside", "2005-11-30"),
	})
	e.RegisterRows("ld:TestDataServices/PAYMENTS", "PAYMENTS", []*xdm.Element{
		pay(1, 1, "100.50"),
		pay(2, 1, "50.25"),
		pay(3, 2, "20.00"),
		pay(4, 4, "10.00"),
		pay(5, 99, "5.00"),
	})
	e.RegisterRows("ld:TestDataServices/PO_CUSTOMERS", "PO_CUSTOMERS", []*xdm.Element{
		order(5001, 1, "OPEN", "300.00"),
		order(5002, 1, "CLOSED", "150.00"),
		order(5003, 2, "OPEN", "75.50"),
		order(5004, 3, "SHIPPED", "20.00"),
	})
	e.RegisterRows("ld:TestDataServices/PO_ITEMS", "PO_ITEMS", nil)
	return e
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func toColumns(cols []translator.ResultColumn) []resultset.Column {
	out := make([]resultset.Column, len(cols))
	for i, c := range cols {
		out[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName, Type: c.Type, Nullable: c.Nullable}
	}
	return out
}

// run translates and executes sql in XML mode, returning the decoded rows.
func run(t *testing.T, sql string, params ...xdm.Atomic) *resultset.Rows {
	t.Helper()
	tr := translator.New(catalog.Demo())
	res, err := tr.Translate(sql)
	if err != nil {
		t.Fatalf("translate %q: %v", sql, err)
	}
	ext := map[string]xdm.Sequence{}
	for i, p := range params {
		ext[fmt.Sprintf("p%d", i+1)] = xdm.SequenceOf(p)
	}
	out, err := fixtureEngine().EvalWith(res.Query, ext)
	if err != nil {
		t.Fatalf("execute %q: %v\nxquery:\n%s", sql, err, res.XQuery())
	}
	rows, err := resultset.FromXML(out, toColumns(res.Columns))
	if err != nil {
		t.Fatalf("decode %q: %v", sql, err)
	}
	return rows
}

// runText executes in text mode and decodes the delimiter-separated
// payload (the §4 path).
func runText(t *testing.T, sql string) *resultset.Rows {
	t.Helper()
	tr := translator.New(catalog.Demo())
	tr.Options.Mode = translator.ModeText
	res, err := tr.Translate(sql)
	if err != nil {
		t.Fatalf("translate %q: %v", sql, err)
	}
	out, err := fixtureEngine().Eval(res.Query)
	if err != nil {
		t.Fatalf("execute %q: %v\nxquery:\n%s", sql, err, res.XQuery())
	}
	it, err := out.Singleton()
	if err != nil {
		t.Fatalf("text payload: %v", err)
	}
	rows, err := resultset.FromText(xdm.StringValue(it), toColumns(res.Columns))
	if err != nil {
		t.Fatalf("decode text %q: %v", sql, err)
	}
	return rows
}

// column collects one column of every row as strings, "NULL" for nulls.
func column(t *testing.T, rows *resultset.Rows, i int) []string {
	t.Helper()
	var out []string
	rows.Reset()
	for rows.Next() {
		s, ok, err := rows.String(i)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			s = "NULL"
		}
		out = append(out, s)
	}
	return out
}

func joined(t *testing.T, rows *resultset.Rows, i int) string {
	return strings.Join(column(t, rows, i), ",")
}

func TestExecSelectStar(t *testing.T) {
	rows := run(t, "SELECT * FROM CUSTOMERS")
	if rows.Len() != 5 {
		t.Fatalf("rows = %d", rows.Len())
	}
	rows.Next()
	id, ok, err := rows.Int64(0)
	if err != nil || !ok || id != 1 {
		t.Fatalf("id = %v %v %v", id, ok, err)
	}
	name, _, _ := rows.String(1)
	if name != "Joe" {
		t.Fatalf("name = %q", name)
	}
}

func TestExecProjectionAndArithmetic(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERID * 10 + 1 AS X FROM CUSTOMERS WHERE CUSTOMERID = 3")
	rows.Next()
	x, ok, err := rows.Int64(0)
	if err != nil || !ok || x != 31 {
		t.Fatalf("x = %v %v %v", x, ok, err)
	}
}

func TestExecWhereFiltersAndNullSemantics(t *testing.T) {
	// CITY = 'Springfield' matches Joe and Bob; Ann's NULL city must not
	// match any equality (including <>).
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CITY = 'Springfield' ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Joe,Bob" {
		t.Fatalf("got %s", got)
	}
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CITY <> 'Springfield' ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Sue,Eve" {
		t.Fatalf("NULL must not satisfy <>: got %s", got)
	}
}

func TestExecIsNull(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CITY IS NULL")
	if got := joined(t, rows, 0); got != "Ann" {
		t.Fatalf("got %s", got)
	}
	rows = run(t, "SELECT COUNT(*) FROM CUSTOMERS WHERE CITY IS NOT NULL")
	rows.Next()
	if n, _, _ := rows.Int64(0); n != 4 {
		t.Fatalf("count = %d", n)
	}
}

func TestExecOrderBy(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERNAME DESC")
	if got := joined(t, rows, 0); got != "Sue,Joe,Eve,Bob,Ann" {
		t.Fatalf("got %s", got)
	}
	// Numeric ordering must be numeric, not lexical.
	rows = run(t, "SELECT PAYMENT FROM PAYMENTS ORDER BY PAYMENT")
	if got := joined(t, rows, 0); got != "5,10,20,50.25,100.5" {
		t.Fatalf("got %s", got)
	}
}

func TestExecOrderByOrdinalAndAlias(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME, CUSTOMERID AS N FROM CUSTOMERS ORDER BY 2 DESC")
	if got := joined(t, rows, 0); got != "Eve,Bob,Ann,Sue,Joe" {
		t.Fatalf("ordinal: got %s", got)
	}
	rows = run(t, "SELECT CUSTOMERID * -1 AS NEG FROM CUSTOMERS ORDER BY NEG")
	if got := joined(t, rows, 0); got != "-5,-4,-3,-2,-1" {
		t.Fatalf("alias: got %s", got)
	}
}

func TestExecOrderByNonProjectedColumn(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS ORDER BY CUSTOMERID DESC")
	if got := joined(t, rows, 0); got != "Eve,Bob,Ann,Sue,Joe" {
		t.Fatalf("got %s", got)
	}
}

func TestExecInnerJoin(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENT
		FROM CUSTOMERS INNER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID
		ORDER BY PAYMENTS.PAYMENTID`)
	if rows.Len() != 4 { // payment 5 has no matching customer
		t.Fatalf("rows = %d", rows.Len())
	}
	if got := joined(t, rows, 0); got != "Joe,Joe,Sue,Bob" {
		t.Fatalf("got %s", got)
	}
}

func TestExecCommaJoinEqualsInnerJoin(t *testing.T) {
	a := run(t, "SELECT COUNT(*) FROM CUSTOMERS, PAYMENTS WHERE CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID")
	b := run(t, "SELECT COUNT(*) FROM CUSTOMERS JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID")
	a.Next()
	b.Next()
	na, _, _ := a.Int64(0)
	nb, _, _ := b.Int64(0)
	if na != nb || na != 4 {
		t.Fatalf("counts = %d, %d", na, nb)
	}
}

func TestExecLeftOuterJoin(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENT
		FROM CUSTOMERS LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID
		ORDER BY CUSTOMERS.CUSTOMERID`)
	// Joe×2, Sue×1, Ann (NULL), Bob×1, Eve (NULL) = 6 rows.
	if rows.Len() != 6 {
		t.Fatalf("rows = %d", rows.Len())
	}
	names := column(t, rows, 0)
	payments := column(t, rows, 1)
	if strings.Join(names, ",") != "Joe,Joe,Sue,Ann,Bob,Eve" {
		t.Fatalf("names = %v", names)
	}
	if payments[3] != "NULL" || payments[5] != "NULL" {
		t.Fatalf("payments = %v", payments)
	}
}

func TestExecRightOuterJoin(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENTID
		FROM CUSTOMERS RIGHT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID
		ORDER BY PAYMENTS.PAYMENTID`)
	// All 5 payments preserved; payment 5's customer is NULL.
	if rows.Len() != 5 {
		t.Fatalf("rows = %d", rows.Len())
	}
	names := column(t, rows, 0)
	if names[4] != "NULL" {
		t.Fatalf("names = %v", names)
	}
}

func TestExecFullOuterJoin(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENTID
		FROM CUSTOMERS FULL OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID`)
	// 4 matches + Ann + Eve unmatched + payment 5 unmatched = 7 rows.
	if rows.Len() != 7 {
		t.Fatalf("rows = %d", rows.Len())
	}
	names := column(t, rows, 0)
	ids := column(t, rows, 1)
	nullNames, nullIDs := 0, 0
	for i := range names {
		if names[i] == "NULL" {
			nullNames++
		}
		if ids[i] == "NULL" {
			nullIDs++
		}
	}
	if nullNames != 1 || nullIDs != 2 {
		t.Fatalf("null names = %d, null ids = %d", nullNames, nullIDs)
	}
}

func TestExecJoinUsingAndNatural(t *testing.T) {
	rows := run(t, "SELECT COUNT(*) FROM CUSTOMERS JOIN PO_CUSTOMERS USING (CUSTOMERID)")
	rows.Next()
	if n, _, _ := rows.Int64(0); n != 4 {
		t.Fatalf("using count = %d", n)
	}
	// NATURAL join on common column CUSTOMERID.
	rows = run(t, "SELECT COUNT(*) FROM CUSTOMERS NATURAL JOIN PO_CUSTOMERS")
	rows.Next()
	if n, _, _ := rows.Int64(0); n != 4 {
		t.Fatalf("natural count = %d", n)
	}
}

func TestExecParenthesizedAliasedJoin(t *testing.T) {
	// The §3.4.2 shape: a join of a table with an aliased join.
	rows := run(t, `SELECT P.PAYMENTID FROM
		(CUSTOMERS JOIN (PAYMENTS JOIN PO_CUSTOMERS ON PAYMENTS.CUSTID = PO_CUSTOMERS.CUSTOMERID) AS P
		 ON CUSTOMERS.CUSTOMERID = P.CUSTID)
		ORDER BY P.PAYMENTID`)
	// payments joined to orders on customer: payments of cust 1 (×2
	// orders), cust 2 (×1). pay1×2, pay2×2, pay3×1 = 5 rows.
	if rows.Len() != 5 {
		t.Fatalf("rows = %d: %v", rows.Len(), column(t, rows, 0))
	}
}

func TestExecDerivedTable(t *testing.T) {
	rows := run(t, `SELECT INFO.ID, INFO.NAME
		FROM (SELECT CUSTOMERID ID, CUSTOMERNAME NAME FROM CUSTOMERS) AS INFO
		WHERE INFO.ID > 3 ORDER BY INFO.ID`)
	if got := joined(t, rows, 1); got != "Bob,Eve" {
		t.Fatalf("got %s", got)
	}
}

func TestExecGroupByWithAggregates(t *testing.T) {
	rows := run(t, `SELECT CUSTID, COUNT(*) AS N, SUM(PAYMENT) AS TOTAL, MIN(PAYMENT) AS LO, MAX(PAYMENT) AS HI
		FROM PAYMENTS GROUP BY CUSTID ORDER BY CUSTID`)
	if rows.Len() != 4 {
		t.Fatalf("groups = %d", rows.Len())
	}
	if got := joined(t, rows, 0); got != "1,2,4,99" {
		t.Fatalf("custids = %s", got)
	}
	if got := joined(t, rows, 1); got != "2,1,1,1" {
		t.Fatalf("counts = %s", got)
	}
	if got := joined(t, rows, 2); got != "150.75,20,10,5" {
		t.Fatalf("sums = %s", got)
	}
	if got := joined(t, rows, 3); got != "50.25,20,10,5" {
		t.Fatalf("mins = %s", got)
	}
}

func TestExecGroupByNullKey(t *testing.T) {
	rows := run(t, "SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY ORDER BY 2 DESC, CITY")
	// Springfield×2, then Lakeside, NULL, Riverton ordered by city asc
	// (NULL sorts first with empty-least).
	if rows.Len() != 4 {
		t.Fatalf("groups = %d", rows.Len())
	}
	cities := column(t, rows, 0)
	if cities[0] != "Springfield" {
		t.Fatalf("cities = %v", cities)
	}
	found := false
	for _, c := range cities {
		if c == "NULL" {
			found = true
		}
	}
	if !found {
		t.Fatal("NULL city group missing")
	}
}

func TestExecHaving(t *testing.T) {
	rows := run(t, `SELECT CUSTID FROM PAYMENTS GROUP BY CUSTID HAVING COUNT(*) > 1`)
	if got := joined(t, rows, 0); got != "1" {
		t.Fatalf("got %s", got)
	}
	rows = run(t, `SELECT CUSTID, SUM(PAYMENT) FROM PAYMENTS GROUP BY CUSTID HAVING SUM(PAYMENT) >= 20 ORDER BY CUSTID`)
	if got := joined(t, rows, 0); got != "1,2" {
		t.Fatalf("got %s", got)
	}
}

func TestExecImplicitGroupOverEmptyInput(t *testing.T) {
	rows := run(t, "SELECT COUNT(*), SUM(PRICE) FROM PO_ITEMS")
	if rows.Len() != 1 {
		t.Fatalf("aggregate query must return exactly one row, got %d", rows.Len())
	}
	rows.Next()
	n, _, _ := rows.Int64(0)
	if n != 0 {
		t.Fatalf("count = %d", n)
	}
	if null, _ := rows.IsNull(1); !null {
		t.Fatal("SUM over empty input must be NULL")
	}
}

func TestExecAggregateIgnoresNulls(t *testing.T) {
	// COUNT(CITY) skips Ann's NULL city.
	rows := run(t, "SELECT COUNT(CITY), COUNT(*) FROM CUSTOMERS")
	rows.Next()
	cityCount, _, _ := rows.Int64(0)
	starCount, _, _ := rows.Int64(1)
	if cityCount != 4 || starCount != 5 {
		t.Fatalf("counts = %d, %d", cityCount, starCount)
	}
}

func TestExecCountDistinct(t *testing.T) {
	rows := run(t, "SELECT COUNT(DISTINCT CITY) FROM CUSTOMERS")
	rows.Next()
	if n, _, _ := rows.Int64(0); n != 3 {
		t.Fatalf("distinct cities = %d", n)
	}
}

func TestExecAggregateOverExpression(t *testing.T) {
	rows := run(t, "SELECT SUM(PAYMENT * 2) FROM PAYMENTS WHERE CUSTID = 1")
	rows.Next()
	f, _, _ := rows.Float64(0)
	if f != 301.5 {
		t.Fatalf("sum = %v", f)
	}
}

func TestExecAvg(t *testing.T) {
	rows := run(t, "SELECT AVG(PAYMENT) FROM PAYMENTS WHERE CUSTID = 1")
	rows.Next()
	f, _, _ := rows.Float64(0)
	if f != 75.375 {
		t.Fatalf("avg = %v", f)
	}
}

func TestExecDistinct(t *testing.T) {
	rows := run(t, "SELECT DISTINCT CITY FROM CUSTOMERS WHERE CITY IS NOT NULL ORDER BY CITY")
	if got := joined(t, rows, 0); got != "Lakeside,Riverton,Springfield" {
		t.Fatalf("got %s", got)
	}
}

func TestExecDistinctTreatsNullAsOneRow(t *testing.T) {
	rows := run(t, "SELECT DISTINCT CITY FROM CUSTOMERS")
	if rows.Len() != 4 { // 3 cities + NULL
		t.Fatalf("rows = %d", rows.Len())
	}
}

func TestExecSetOperations(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "1,2,3,4,5,99" {
		t.Fatalf("union: %s", got)
	}
	rows = run(t, `SELECT CUSTOMERID FROM CUSTOMERS UNION ALL SELECT CUSTID FROM PAYMENTS`)
	if rows.Len() != 10 {
		t.Fatalf("union all rows = %d", rows.Len())
	}
	rows = run(t, `SELECT CUSTOMERID FROM CUSTOMERS EXCEPT SELECT CUSTID FROM PAYMENTS ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "3,5" {
		t.Fatalf("except: %s", got)
	}
	rows = run(t, `SELECT CUSTOMERID FROM CUSTOMERS INTERSECT SELECT CUSTID FROM PAYMENTS ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "1,2,4" {
		t.Fatalf("intersect: %s", got)
	}
}

func TestExecInListAndSubquery(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (2, 4) ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Sue,Bob" {
		t.Fatalf("in list: %s", got)
	}
	rows = run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS) ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Joe,Sue,Bob" {
		t.Fatalf("in subquery: %s", got)
	}
	rows = run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE CUSTOMERID NOT IN (SELECT CUSTID FROM PAYMENTS) ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Ann,Eve" {
		t.Fatalf("not in: %s", got)
	}
}

func TestExecCorrelatedExists(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS C
		WHERE EXISTS (SELECT 1 FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID)
		ORDER BY C.CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Joe,Sue,Bob" {
		t.Fatalf("exists: %s", got)
	}
	rows = run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS C
		WHERE NOT EXISTS (SELECT 1 FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID)
		ORDER BY C.CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Ann,Eve" {
		t.Fatalf("not exists: %s", got)
	}
}

func TestExecScalarSubquery(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = (SELECT MAX(CUSTID) FROM PAYMENTS WHERE CUSTID < 10)")
	if got := joined(t, rows, 0); got != "Bob" {
		t.Fatalf("got %s", got)
	}
}

func TestExecQuantified(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE CUSTOMERID > ALL (SELECT CUSTID FROM PAYMENTS WHERE CUSTID < 3) ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Ann,Bob,Eve" {
		t.Fatalf("> ALL: %s", got)
	}
	rows = run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE CUSTOMERID = ANY (SELECT CUSTID FROM PAYMENTS) ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Joe,Sue,Bob" {
		t.Fatalf("= ANY: %s", got)
	}
}

func TestExecLike(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME LIKE '%e' ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Joe,Sue,Eve" {
		t.Fatalf("like: %s", got)
	}
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERNAME NOT LIKE '%e' ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Ann,Bob" {
		t.Fatalf("not like: %s", got)
	}
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CITY LIKE '_iverton'")
	if got := joined(t, rows, 0); got != "Sue" {
		t.Fatalf("underscore: %s", got)
	}
}

func TestExecBetween(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID BETWEEN 2 AND 4 ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Sue,Ann,Bob" {
		t.Fatalf("between: %s", got)
	}
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID NOT BETWEEN 2 AND 4 ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Joe,Eve" {
		t.Fatalf("not between: %s", got)
	}
}

func TestExecCase(t *testing.T) {
	rows := run(t, `SELECT CASE WHEN CUSTOMERID < 3 THEN 'low' WHEN CUSTOMERID < 5 THEN 'mid' ELSE 'high' END AS TIER
		FROM CUSTOMERS ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "low,low,mid,mid,high" {
		t.Fatalf("searched case: %s", got)
	}
	rows = run(t, `SELECT CASE CITY WHEN 'Springfield' THEN 'S' ELSE 'O' END FROM CUSTOMERS ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "S,O,O,S,O" {
		t.Fatalf("simple case: %s", got)
	}
	// CASE without ELSE yields NULL.
	rows = run(t, `SELECT CASE WHEN CUSTOMERID = 1 THEN 'one' END FROM CUSTOMERS WHERE CUSTOMERID = 2`)
	rows.Next()
	if null, _ := rows.IsNull(0); !null {
		t.Fatal("CASE fallthrough must be NULL")
	}
}

func TestExecScalarFunctions(t *testing.T) {
	rows := run(t, `SELECT UPPER(CUSTOMERNAME), LOWER(CUSTOMERNAME), LENGTH(CUSTOMERNAME),
		SUBSTRING(CUSTOMERNAME FROM 1 FOR 2), CUSTOMERNAME || '!' FROM CUSTOMERS WHERE CUSTOMERID = 1`)
	rows.Next()
	vals := make([]string, 5)
	for i := range vals {
		vals[i], _, _ = rows.String(i)
	}
	want := []string{"JOE", "joe", "3", "Jo", "Joe!"}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("col %d = %q, want %q", i, vals[i], want[i])
		}
	}
}

func TestExecCoalesceAndNullif(t *testing.T) {
	rows := run(t, "SELECT COALESCE(CITY, 'unknown') FROM CUSTOMERS ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Springfield,Riverton,unknown,Springfield,Lakeside" {
		t.Fatalf("coalesce: %s", got)
	}
	rows = run(t, "SELECT NULLIF(CITY, 'Springfield') FROM CUSTOMERS ORDER BY CUSTOMERID")
	vals := column(t, rows, 0)
	if vals[0] != "NULL" || vals[1] != "Riverton" || vals[3] != "NULL" {
		t.Fatalf("nullif: %v", vals)
	}
}

func TestExecExtractAndDates(t *testing.T) {
	rows := run(t, "SELECT EXTRACT(YEAR FROM SIGNUPDATE) FROM CUSTOMERS WHERE CUSTOMERID = 1")
	rows.Next()
	if y, _, _ := rows.Int64(0); y != 2005 {
		t.Fatalf("year = %d", y)
	}
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE SIGNUPDATE > DATE '2005-01-01' ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Joe,Eve" {
		t.Fatalf("date compare: %s", got)
	}
}

func TestExecCast(t *testing.T) {
	rows := run(t, "SELECT CAST(PAYMENT AS INTEGER) FROM PAYMENTS WHERE PAYMENTID = 1")
	rows.Next()
	if n, _, _ := rows.Int64(0); n != 100 {
		t.Fatalf("cast = %d", n)
	}
}

func TestExecPreparedParameters(t *testing.T) {
	rows := run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?", xdm.Integer(4))
	if got := joined(t, rows, 0); got != "Bob" {
		t.Fatalf("param: %s", got)
	}
	// String-typed parameter arrives as a string and is cast server-side.
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?", xdm.String("2"))
	if got := joined(t, rows, 0); got != "Sue" {
		t.Fatalf("string param: %s", got)
	}
}

func TestExecSelectWithoutFrom(t *testing.T) {
	rows := run(t, "SELECT 1, 'x' AS LBL")
	if rows.Len() != 1 {
		t.Fatalf("rows = %d", rows.Len())
	}
	rows.Next()
	n, _, _ := rows.Int64(0)
	s, _, _ := rows.String(1)
	if n != 1 || s != "x" {
		t.Fatalf("got %d %q", n, s)
	}
}

func TestExecTextModeMatchesXMLMode(t *testing.T) {
	queries := []string{
		"SELECT * FROM CUSTOMERS ORDER BY CUSTOMERID",
		"SELECT CUSTOMERNAME, CITY FROM CUSTOMERS ORDER BY CUSTOMERID",
		"SELECT CUSTID, SUM(PAYMENT) FROM PAYMENTS GROUP BY CUSTID ORDER BY CUSTID",
		`SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENT
		 FROM CUSTOMERS LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID
		 ORDER BY CUSTOMERS.CUSTOMERID`,
	}
	for _, q := range queries {
		xmlRows := run(t, q)
		textRows := runText(t, q)
		if xmlRows.Len() != textRows.Len() {
			t.Fatalf("%q: xml %d rows vs text %d rows", q, xmlRows.Len(), textRows.Len())
		}
		for c := range xmlRows.Columns() {
			if joined(t, xmlRows, c) != joined(t, textRows, c) {
				t.Fatalf("%q column %d differs:\nxml:  %s\ntext: %s",
					q, c, joined(t, xmlRows, c), joined(t, textRows, c))
			}
		}
	}
}

func TestExecTextModeEscaping(t *testing.T) {
	// Names containing the delimiters must round-trip via escaping.
	e := xqeval.New()
	row := xdm.NewElement("CUSTOMERS")
	row.AddChild(xdm.NewTextElement("CUSTOMERID", "1"))
	row.AddChild(xdm.NewTextElement("CUSTOMERNAME", `A <B> & "C" > D`))
	e.RegisterRows("ld:TestDataServices/CUSTOMERS", "CUSTOMERS", []*xdm.Element{row})
	e.RegisterRows("ld:TestDataServices/PAYMENTS", "PAYMENTS", nil)
	e.RegisterRows("ld:TestDataServices/PO_CUSTOMERS", "PO_CUSTOMERS", nil)
	e.RegisterRows("ld:TestDataServices/PO_ITEMS", "PO_ITEMS", nil)

	tr := translator.New(catalog.Demo())
	tr.Options.Mode = translator.ModeText
	res, err := tr.Translate("SELECT CUSTOMERNAME FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Eval(res.Query)
	if err != nil {
		t.Fatal(err)
	}
	it, _ := out.Singleton()
	rows, err := resultset.FromText(xdm.StringValue(it), toColumns(res.Columns))
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	got, _, _ := rows.String(0)
	if got != `A <B> & "C" > D` {
		t.Fatalf("got %q", got)
	}
}

func TestExecNullVsEmptyStringInTextMode(t *testing.T) {
	e := xqeval.New()
	mk := func(id int, name string, withName bool) *xdm.Element {
		r := xdm.NewElement("CUSTOMERS")
		r.AddChild(xdm.NewTextElement("CUSTOMERID", itoa(id)))
		if withName {
			el := xdm.NewElement("CUSTOMERNAME")
			el.AddText(name)
			r.AddChild(el)
		}
		return r
	}
	e.RegisterRows("ld:TestDataServices/CUSTOMERS", "CUSTOMERS", []*xdm.Element{
		mk(1, "", true),  // empty string
		mk(2, "", false), // NULL
	})
	e.RegisterRows("ld:TestDataServices/PAYMENTS", "PAYMENTS", nil)
	e.RegisterRows("ld:TestDataServices/PO_CUSTOMERS", "PO_CUSTOMERS", nil)
	e.RegisterRows("ld:TestDataServices/PO_ITEMS", "PO_ITEMS", nil)

	tr := translator.New(catalog.Demo())
	tr.Options.Mode = translator.ModeText
	res, err := tr.Translate("SELECT CUSTOMERNAME FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Eval(res.Query)
	if err != nil {
		t.Fatal(err)
	}
	it, _ := out.Singleton()
	rows, err := resultset.FromText(xdm.StringValue(it), toColumns(res.Columns))
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	s, ok, _ := rows.String(0)
	if !ok || s != "" {
		t.Fatalf("row 1 should be empty string, got ok=%v %q", ok, s)
	}
	rows.Next()
	if null, _ := rows.IsNull(0); !null {
		t.Fatal("row 2 should be NULL")
	}
}

func TestExecStoredProcedureStyleFunction(t *testing.T) {
	// Parameterized functions are rejected in FROM — callers use the
	// driver's procedure-call surface, tested in the driver package.
	tr := translator.New(catalog.Demo())
	_, err := tr.Translate("SELECT * FROM getCustomerById")
	if err == nil {
		t.Fatal("parameterized function as table should fail")
	}
}

// Sequence and intSeq are small aliases for the conformance matrix.
type Sequence = xdm.Sequence

func intSeq(n int64) xdm.Sequence { return xdm.SequenceOf(xdm.Integer(n)) }

func newTranslator() *translator.Translator {
	return translator.New(catalog.Demo())
}
