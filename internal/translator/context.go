package translator

import (
	"fmt"
	"strings"

	"repro/internal/qfront"
)

// Context is the query context of §3.4.3: the single point of access to all
// semantic information about one (sub)query, captured during stage one. A
// statement with subqueries yields a context tree — the paper's Figure 4
// shows three contexts for a doubly nested query. The root is a marker
// context (the paper's CTX0) whose children are the statement's top-level
// query blocks.
type Context struct {
	// ID numbers contexts in discovery (preorder) order; the marker root
	// is 0 and the outermost real query is 1, matching the paper's CTX0 /
	// CTX1 narration.
	ID       int
	Parent   *Context
	Children []*Context

	// Spec is the SELECT block this context describes; nil for the marker
	// root and for set-operation grouping contexts.
	Spec *qfront.QuerySpec

	// HasAggregates records whether the block's projection or HAVING uses
	// aggregate functions — captured in stage one because it decides the
	// translation shape (grouped vs plain FLWOR) in stage three.
	HasAggregates bool

	// SubqueryCount is the number of directly nested query blocks
	// (derived tables plus predicate subqueries).
	SubqueryCount int
}

// CaptureContexts walks a parsed statement and builds its context tree
// (stage one's semantic capture).
func CaptureContexts(stmt *qfront.SelectStmt) *Context {
	root := &Context{ID: 0}
	counter := 1
	captureQueryExpr(stmt.Body, root, &counter)
	return root
}

func captureQueryExpr(body qfront.QueryExpr, parent *Context, counter *int) {
	switch body := body.(type) {
	case *qfront.QuerySpec:
		captureSpec(body, parent, counter)
	case *qfront.SetOpExpr:
		captureQueryExpr(body.Left, parent, counter)
		captureQueryExpr(body.Right, parent, counter)
	}
}

func captureSpec(spec *qfront.QuerySpec, parent *Context, counter *int) {
	ctx := &Context{ID: *counter, Parent: parent, Spec: spec}
	*counter++
	parent.Children = append(parent.Children, ctx)

	for _, item := range spec.Items {
		if item.Expr != nil && qfront.ContainsAggregate(item.Expr) {
			ctx.HasAggregates = true
		}
	}
	if spec.Having != nil && qfront.ContainsAggregate(spec.Having) {
		ctx.HasAggregates = true
	}

	// Derived tables in FROM.
	qfront.WalkTableRefs(spec.From, func(r qfront.TableRef) {
		if d, ok := r.(*qfront.DerivedTable); ok {
			ctx.SubqueryCount++
			captureQueryExpr(d.Query.Body, ctx, counter)
		}
	})
	// Join conditions can hold subqueries too.
	qfront.WalkTableRefs(spec.From, func(r qfront.TableRef) {
		if j, ok := r.(*qfront.JoinExpr); ok && j.Cond != nil {
			captureExprSubqueries(j.Cond, ctx, counter)
		}
	})

	// Predicate subqueries in expressions.
	for _, item := range spec.Items {
		captureExprSubqueries(item.Expr, ctx, counter)
	}
	captureExprSubqueries(spec.Where, ctx, counter)
	for _, e := range spec.GroupBy {
		captureExprSubqueries(e, ctx, counter)
	}
	captureExprSubqueries(spec.Having, ctx, counter)
}

func captureExprSubqueries(e qfront.Expr, ctx *Context, counter *int) {
	if e == nil {
		return
	}
	qfront.WalkExpr(e, func(x qfront.Expr) bool {
		switch x := x.(type) {
		case *qfront.SubqueryExpr:
			ctx.SubqueryCount++
			captureQueryExpr(x.Query.Body, ctx, counter)
		case *qfront.InExpr:
			if x.Subquery != nil {
				ctx.SubqueryCount++
				captureQueryExpr(x.Subquery.Body, ctx, counter)
			}
		case *qfront.ExistsExpr:
			ctx.SubqueryCount++
			captureQueryExpr(x.Subquery.Body, ctx, counter)
		case *qfront.QuantifiedExpr:
			ctx.SubqueryCount++
			captureQueryExpr(x.Subquery.Body, ctx, counter)
		}
		return true
	})
}

// Count returns the number of contexts in the tree, excluding the marker
// root.
func (c *Context) Count() int {
	n := 0
	if c.Spec != nil {
		n = 1
	}
	for _, ch := range c.Children {
		n += ch.Count()
	}
	return n
}

// Find returns the context whose Spec is the given query block.
func (c *Context) Find(spec *qfront.QuerySpec) *Context {
	if c.Spec == spec {
		return c
	}
	for _, ch := range c.Children {
		if got := ch.Find(spec); got != nil {
			return got
		}
	}
	return nil
}

// Depth returns the context's nesting depth (marker root = 0).
func (c *Context) Depth() int {
	d := 0
	for p := c.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Tree renders the context tree in the style of the paper's Figure 4 —
// one line per context with id, nesting, and captured semantic flags —
// for EXPLAIN-style inspection.
func (c *Context) Tree() string {
	var b strings.Builder
	c.writeTree(&b, 0)
	return b.String()
}

func (c *Context) writeTree(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if c.Spec == nil {
		fmt.Fprintf(b, "CTX%d (marker)\n", c.ID)
	} else {
		flags := ""
		if c.HasAggregates {
			flags += " aggregates"
		}
		if c.SubqueryCount > 0 {
			flags += fmt.Sprintf(" subqueries=%d", c.SubqueryCount)
		}
		fmt.Fprintf(b, "CTX%d: %s%s\n", c.ID, summarizeSpec(c.Spec), flags)
	}
	for _, ch := range c.Children {
		ch.writeTree(b, depth+1)
	}
}

// summarizeSpec gives a one-line sketch of a query block.
func summarizeSpec(spec *qfront.QuerySpec) string {
	var tables []string
	qfront.WalkTableRefs(spec.From, func(r qfront.TableRef) {
		switch r := r.(type) {
		case *qfront.TableName:
			tables = append(tables, r.Name)
		case *qfront.DerivedTable:
			tables = append(tables, r.Alias+"(subquery)")
		}
	})
	from := strings.Join(tables, ", ")
	if from == "" {
		from = "<no tables>"
	}
	parts := []string{fmt.Sprintf("SELECT %d item(s) FROM %s", len(spec.Items), from)}
	if spec.Where != nil {
		parts = append(parts, "WHERE …")
	}
	if len(spec.GroupBy) > 0 {
		parts = append(parts, fmt.Sprintf("GROUP BY %d key(s)", len(spec.GroupBy)))
	}
	if spec.Having != nil {
		parts = append(parts, "HAVING …")
	}
	return strings.Join(parts, " ")
}
