package translator_test

// Deeper semantic edge cases beyond the conformance matrix: grouped
// expression keys, self-joins, NULL ordering, correlated projections,
// HAVING interactions, and date predicates.

import (
	"testing"
)

func TestExecGroupByExpressionKey(t *testing.T) {
	// The group key is a CASE expression; the select item matches it
	// textually (SQL-92's derivability rule, matched canonically).
	rows := run(t, `SELECT CASE WHEN CUSTOMERID < 3 THEN 'lo' ELSE 'hi' END, COUNT(*)
		FROM CUSTOMERS
		GROUP BY CASE WHEN CUSTOMERID < 3 THEN 'lo' ELSE 'hi' END
		ORDER BY 1 DESC`)
	if got := joined(t, rows, 0); got != "lo,hi" {
		t.Fatalf("keys = %s", got)
	}
	if got := joined(t, rows, 1); got != "2,3" {
		t.Fatalf("counts = %s", got)
	}
}

func TestExecGroupByScalarFunctionKey(t *testing.T) {
	rows := run(t, `SELECT UPPER(CITY), COUNT(*) FROM CUSTOMERS
		WHERE CITY IS NOT NULL GROUP BY UPPER(CITY) ORDER BY 1`)
	if got := joined(t, rows, 0); got != "LAKESIDE,RIVERTON,SPRINGFIELD" {
		t.Fatalf("keys = %s", got)
	}
}

func TestExecSelfJoin(t *testing.T) {
	// Pairs of distinct customers in the same city.
	rows := run(t, `SELECT A.CUSTOMERNAME, B.CUSTOMERNAME
		FROM CUSTOMERS A, CUSTOMERS B
		WHERE A.CITY = B.CITY AND A.CUSTOMERID < B.CUSTOMERID
		ORDER BY A.CUSTOMERID`)
	if rows.Len() != 1 {
		t.Fatalf("rows = %d", rows.Len())
	}
	rows.Next()
	a, _, _ := rows.String(0)
	b, _, _ := rows.String(1)
	if a != "Joe" || b != "Bob" {
		t.Fatalf("pair = %s, %s", a, b)
	}
}

func TestExecNullOrderingAscVsDesc(t *testing.T) {
	// Ascending: NULL city first (empty least); descending: NULL last.
	rows := run(t, "SELECT CITY FROM CUSTOMERS ORDER BY CITY, CUSTOMERID")
	asc := column(t, rows, 0)
	if asc[0] != "NULL" {
		t.Fatalf("asc = %v", asc)
	}
	rows = run(t, "SELECT CITY FROM CUSTOMERS ORDER BY CITY DESC, CUSTOMERID")
	desc := column(t, rows, 0)
	if desc[len(desc)-1] != "NULL" {
		t.Fatalf("desc = %v", desc)
	}
}

func TestExecCorrelatedProjection(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERNAME,
		(SELECT COUNT(*) FROM PAYMENTS P WHERE P.CUSTID = C.CUSTOMERID) AS NPAY
		FROM CUSTOMERS C ORDER BY C.CUSTOMERID`)
	if got := joined(t, rows, 1); got != "2,1,0,1,0" {
		t.Fatalf("counts = %s", got)
	}
}

func TestExecHavingOnDifferentAggregate(t *testing.T) {
	// HAVING uses an aggregate that is not in the projection.
	rows := run(t, `SELECT CUSTID FROM PAYMENTS GROUP BY CUSTID
		HAVING MAX(PAYMENT) > 15 ORDER BY CUSTID`)
	if got := joined(t, rows, 0); got != "1,2" {
		t.Fatalf("got %s", got)
	}
}

func TestExecGroupByTwoKeys(t *testing.T) {
	rows := run(t, `SELECT CITY, SIGNUPDATE, COUNT(*) FROM CUSTOMERS
		GROUP BY CITY, SIGNUPDATE ORDER BY CITY, SIGNUPDATE`)
	// Each customer has a unique (city, signup) pair in the fixture → 5 groups.
	if rows.Len() != 5 {
		t.Fatalf("groups = %d", rows.Len())
	}
}

func TestExecDatePredicates(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERNAME FROM CUSTOMERS
		WHERE SIGNUPDATE BETWEEN DATE '2004-01-01' AND DATE '2005-06-30'
		ORDER BY CUSTOMERID`)
	if got := joined(t, rows, 0); got != "Joe,Sue" {
		t.Fatalf("got %s", got)
	}
	// EXTRACT in WHERE.
	rows = run(t, "SELECT CUSTOMERNAME FROM CUSTOMERS WHERE EXTRACT(YEAR FROM SIGNUPDATE) = 2005 ORDER BY CUSTOMERID")
	if got := joined(t, rows, 0); got != "Joe,Eve" {
		t.Fatalf("got %s", got)
	}
}

func TestExecOuterJoinOfDerivedTable(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERS.CUSTOMERNAME, BIG.PAYMENT
		FROM CUSTOMERS LEFT OUTER JOIN
			(SELECT CUSTID, PAYMENT FROM PAYMENTS WHERE PAYMENT > 40) AS BIG
		ON CUSTOMERS.CUSTOMERID = BIG.CUSTID
		ORDER BY CUSTOMERS.CUSTOMERID, BIG.PAYMENT`)
	// Joe matches two big payments; everyone else NULL-extends.
	if rows.Len() != 6 {
		t.Fatalf("rows = %d", rows.Len())
	}
	payments := column(t, rows, 1)
	nulls := 0
	for _, p := range payments {
		if p == "NULL" {
			nulls++
		}
	}
	if nulls != 4 {
		t.Fatalf("payments = %v", payments)
	}
}

func TestExecUnionCompatibilityPromotion(t *testing.T) {
	// INTEGER union DECIMAL promotes to DECIMAL.
	tr := newTranslator()
	res, err := tr.Translate("SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT PAYMENT FROM PAYMENTS")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0].Type.String() != "DECIMAL" {
		t.Fatalf("union type = %v", res.Columns[0].Type)
	}
}

func TestExecDistinctOnExpressions(t *testing.T) {
	rows := run(t, "SELECT DISTINCT CUSTID * 0 FROM PAYMENTS")
	if rows.Len() != 1 {
		t.Fatalf("rows = %d", rows.Len())
	}
}

func TestExecConcatWithNull(t *testing.T) {
	// SQL-92 says NULL || x is NULL; the fn:concat mapping treats NULL as
	// the empty string instead — a documented deviation shared with many
	// real drivers. Pin the actual behavior.
	rows := run(t, "SELECT CITY || '!' FROM CUSTOMERS WHERE CUSTOMERID = 3")
	rows.Next()
	s, ok, _ := rows.String(0)
	if !ok || s != "!" {
		t.Fatalf("got %q ok=%v", s, ok)
	}
}

func TestExecWhereOnComputedDerivedColumn(t *testing.T) {
	rows := run(t, `SELECT D.DOUBLED FROM
		(SELECT PAYMENT * 2 AS DOUBLED FROM PAYMENTS) AS D
		WHERE D.DOUBLED > 100 ORDER BY D.DOUBLED`)
	if got := joined(t, rows, 0); got != "100.5,201" {
		t.Fatalf("got %s", got)
	}
}

// TestExecExample11FullShape reproduces the paper's Example 11/12 "complex
// query" in full: a join materialized behind a let, grouping over two keys
// with the BEA extension, a scalar function over a group key, an aggregate
// over the partition, and ordered output.
func TestExecExample11FullShape(t *testing.T) {
	rows := run(t, `SELECT CUSTOMERS.CUSTOMERID, CONCAT(CUSTOMERS.CUSTOMERNAME, '!') BANG,
		COUNT(PO_CUSTOMERS.ORDERID) N
		FROM CUSTOMERS, PO_CUSTOMERS
		WHERE CUSTOMERS.CUSTOMERID = PO_CUSTOMERS.CUSTOMERID
		GROUP BY CUSTOMERS.CUSTOMERID, CUSTOMERS.CUSTOMERNAME
		ORDER BY 3 DESC, CUSTOMERS.CUSTOMERID`)
	// Joe has 2 orders; Sue and Ann 1 each.
	if got := joined(t, rows, 0); got != "1,2,3" {
		t.Fatalf("ids = %s", got)
	}
	if got := joined(t, rows, 1); got != "Joe!,Sue!,Ann!" {
		t.Fatalf("names = %s", got)
	}
	if got := joined(t, rows, 2); got != "2,1,1" {
		t.Fatalf("counts = %s", got)
	}
}

func TestExecUnqualifiedColumnThroughAliasedJoin(t *testing.T) {
	// PAYMENTID is visible both through the physical PAYMENTS binding and
	// the join alias P; that is one column, not an ambiguity.
	rows := run(t, `SELECT PAYMENTID
		FROM (CUSTOMERS JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID)  AS P
		ORDER BY PAYMENTID`)
	if got := joined(t, rows, 0); got != "1,2,3,4" {
		t.Fatalf("got %s", got)
	}
	// A genuinely ambiguous name (CUSTOMERID exists in both tables of the
	// join) must still be rejected.
	_, err := newTranslator().Translate(`SELECT CUSTOMERID
		FROM (CUSTOMERS JOIN PO_CUSTOMERS ON CUSTOMERS.CUSTOMERID = PO_CUSTOMERS.CUSTOMERID) AS P`)
	if err == nil || !contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}
