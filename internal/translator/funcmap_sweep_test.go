package translator_test

import (
	"sort"
	"testing"

	"repro/internal/translator"
)

// funcSweepCases gives every entry of the preconfigured function map
// (§3.5 iii) one SQL statement that is both translated and executed
// against the fixture engine. The sweep below walks the live maps, so
// adding a function without a case here fails the test — and a case
// whose function was removed from the map fails too.
var funcSweepCases = map[string]string{
	// string functions
	"UPPER":            "SELECT UPPER(CUSTOMERNAME) FROM CUSTOMERS",
	"LOWER":            "SELECT LOWER(CUSTOMERNAME) FROM CUSTOMERS",
	"CONCAT":           "SELECT CONCAT(CUSTOMERNAME, '!') FROM CUSTOMERS",
	"LENGTH":           "SELECT LENGTH(CUSTOMERNAME) FROM CUSTOMERS",
	"CHAR_LENGTH":      "SELECT CHAR_LENGTH(CUSTOMERNAME) FROM CUSTOMERS",
	"CHARACTER_LENGTH": "SELECT CHARACTER_LENGTH(CUSTOMERNAME) FROM CUSTOMERS",
	"SUBSTRING":        "SELECT SUBSTRING(CUSTOMERNAME FROM 1 FOR 2) FROM CUSTOMERS",
	"POSITION":         "SELECT POSITION('o' IN CUSTOMERNAME) FROM CUSTOMERS",
	"LOCATE":           "SELECT LOCATE('o', CUSTOMERNAME) FROM CUSTOMERS",
	"LEFT":             "SELECT LEFT(CUSTOMERNAME, 2) FROM CUSTOMERS",
	"RIGHT":            "SELECT RIGHT(CUSTOMERNAME, 2) FROM CUSTOMERS",
	"TRIM":             "SELECT TRIM(BOTH 'x' FROM CUSTOMERNAME) FROM CUSTOMERS",
	"LTRIM":            "SELECT LTRIM(CUSTOMERNAME) FROM CUSTOMERS",
	"RTRIM":            "SELECT RTRIM(CUSTOMERNAME) FROM CUSTOMERS",
	"REPEAT":           "SELECT REPEAT(CUSTOMERNAME, 2) FROM CUSTOMERS",

	// numeric functions
	"ABS":     "SELECT ABS(PAYMENT) FROM PAYMENTS",
	"FLOOR":   "SELECT FLOOR(PAYMENT) FROM PAYMENTS",
	"CEILING": "SELECT CEILING(PAYMENT) FROM PAYMENTS",
	"CEIL":    "SELECT CEIL(PAYMENT) FROM PAYMENTS",
	"ROUND":   "SELECT ROUND(PAYMENT) FROM PAYMENTS",
	"MOD":     "SELECT MOD(CUSTOMERID, 2) FROM CUSTOMERS",

	// NULL handling
	"COALESCE": "SELECT COALESCE(CITY, 'unknown') FROM CUSTOMERS",
	"NULLIF":   "SELECT NULLIF(CITY, 'Springfield') FROM CUSTOMERS",

	// datetime functions (the niladic ones take no parentheses)
	"CURRENT_DATE":      "SELECT CURRENT_DATE FROM CUSTOMERS",
	"CURRENT_TIME":      "SELECT CURRENT_TIME FROM CUSTOMERS",
	"CURRENT_TIMESTAMP": "SELECT CURRENT_TIMESTAMP FROM CUSTOMERS",
	"EXTRACT_YEAR":      "SELECT EXTRACT(YEAR FROM SIGNUPDATE) FROM CUSTOMERS WHERE SIGNUPDATE IS NOT NULL",
	"EXTRACT_MONTH":     "SELECT EXTRACT(MONTH FROM SIGNUPDATE) FROM CUSTOMERS WHERE SIGNUPDATE IS NOT NULL",
	"EXTRACT_DAY":       "SELECT EXTRACT(DAY FROM SIGNUPDATE) FROM CUSTOMERS WHERE SIGNUPDATE IS NOT NULL",
	"EXTRACT_HOUR":      "SELECT EXTRACT(HOUR FROM CURRENT_TIMESTAMP) FROM CUSTOMERS",
	"EXTRACT_MINUTE":    "SELECT EXTRACT(MINUTE FROM CURRENT_TIMESTAMP) FROM CUSTOMERS",
	"EXTRACT_SECOND":    "SELECT EXTRACT(SECOND FROM CURRENT_TIME) FROM CUSTOMERS",
}

var aggSweepCases = map[string]string{
	"COUNT": "SELECT COUNT(*), COUNT(CITY), COUNT(DISTINCT CITY) FROM CUSTOMERS",
	"SUM":   "SELECT SUM(PAYMENT) FROM PAYMENTS",
	"AVG":   "SELECT AVG(PAYMENT) FROM PAYMENTS",
	"MIN":   "SELECT MIN(PAYMENT), MIN(CUSTOMERNAME) FROM PAYMENTS, CUSTOMERS",
	"MAX":   "SELECT MAX(PAYMENT), MAX(SIGNUPDATE) FROM PAYMENTS, CUSTOMERS",
}

// TestFuncMapSweep executes one statement per function map entry end to
// end: translate, evaluate on the fixture engine, decode. A function
// whose translation references an XQuery function the engine does not
// implement fails here with the engine's unknown-function error.
func TestFuncMapSweep(t *testing.T) {
	sweep := func(t *testing.T, mapNames []string, cases map[string]string) {
		sort.Strings(mapNames)
		inMap := map[string]bool{}
		for _, name := range mapNames {
			inMap[name] = true
			sql, ok := cases[name]
			if !ok {
				t.Errorf("function map entry %s has no sweep case — add one", name)
				continue
			}
			t.Run(name, func(t *testing.T) {
				rows := run(t, sql)
				if rows.Len() == 0 {
					t.Fatalf("%q returned no rows", sql)
				}
			})
		}
		for name := range cases {
			if !inMap[name] {
				t.Errorf("sweep case %s has no function map entry — stale case?", name)
			}
		}
	}
	t.Run("scalar", func(t *testing.T) { sweep(t, translator.ScalarFuncNames(), funcSweepCases) })
	t.Run("aggregate", func(t *testing.T) { sweep(t, translator.AggFuncNames(), aggSweepCases) })
}
