package translator

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/xquery"
)

// FuzzTranslate runs arbitrary SQL through the full three-stage pipeline
// against the demo catalog. The contract mirrors the driver's: bad input
// produces an error, never a panic, and every successful translation must
// serialize to XQuery that our own XQuery parser accepts.
func FuzzTranslate(f *testing.F) {
	seeds := []string{
		"SELECT * FROM CUSTOMERS",
		"SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID",
		"SELECT A.CUSTOMERNAME, B.PAYMENT FROM CUSTOMERS A LEFT OUTER JOIN PAYMENTS B ON A.CUSTOMERID = B.CUSTID",
		"SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1",
		"SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS",
		"SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY",
		"SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS)",
		"SELECT UPPER(CUSTOMERNAME), LENGTH(CITY) FROM CUSTOMERS WHERE CITY IS NOT NULL",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?",
		"SELECT CAST(CUSTOMERID AS VARCHAR(10)) FROM CUSTOMERS ORDER BY 1",
		"SELECT COUNT(DISTINCT CITY), MIN(SIGNUPDATE) FROM CUSTOMERS",
		"SELECT EXTRACT(YEAR FROM PAYDATE), SUM(PAYMENT) FROM PAYMENTS GROUP BY EXTRACT(YEAR FROM PAYDATE)",
		"SELECT * FROM PO_CUSTOMERS WHERE STATUS = 'OPEN' AND TOTAL BETWEEN 10 AND 500",
		"SELECT CUSTOMERID FROM CUSTOMERS EXCEPT SELECT CUSTID FROM PAYMENTS",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tr := New(catalog.NewCache(catalog.Demo()))
	f.Fuzz(func(t *testing.T, sql string) {
		res, err := tr.Translate(sql)
		if err != nil {
			return
		}
		xq := res.XQuery()
		if xq == "" {
			t.Fatalf("empty XQuery for %q", sql)
		}
		if _, err := xquery.Parse(xq); err != nil {
			t.Fatalf("generated XQuery does not parse back (input %q): %v\n%s", sql, err, xq)
		}
	})
}
