package translator

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/qfront"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// outCol describes one output column of a generated rows expression.
type outCol struct {
	Label       string
	ElementName string
	SQL         catalog.SQLType
	Type        xdm.AtomicType
	Nullable    bool
	Precision   int
	Scale       int
}

// genSelectStmt translates a full statement (query body + ORDER BY) into a
// rows expression producing RECORD elements.
func (g *generator) genSelectStmt(stmt *qfront.SelectStmt, parent *qscope) (xquery.Expr, []outCol, error) {
	var rows xquery.Expr
	var cols []outCol
	var err error
	switch body := stmt.Body.(type) {
	case *qfront.QuerySpec:
		rows, cols, err = g.genQuerySpec(body, parent, stmt.OrderBy)
		if err != nil {
			return nil, nil, err
		}
	case *qfront.SetOpExpr:
		rows, cols, err = g.genSetOp(body, parent)
		if err != nil {
			return nil, nil, err
		}
		if len(stmt.OrderBy) > 0 {
			rows, err = g.orderRows(rows, cols, stmt.OrderBy, body.Position())
			if err != nil {
				return nil, nil, err
			}
		}
	default:
		return nil, nil, semErr(stmt.Pos, "unsupported query body %T", stmt.Body)
	}
	// FETCH FIRST n ROWS ONLY → fn:subsequence over the (ordered) rows.
	if stmt.Limit >= 0 {
		rows = xquery.Call("fn:subsequence", rows, xquery.Num("1"), xquery.Num(fmt.Sprintf("%d", stmt.Limit)))
	}
	return rows, cols, nil
}

// genSetOp renders UNION/EXCEPT/INTERSECT over two row sequences. The
// right side's RECORD elements are renamed to the left side's column
// element names (SQL takes output names from the first operand), and types
// are checked for union compatibility.
func (g *generator) genSetOp(s *qfront.SetOpExpr, parent *qscope) (xquery.Expr, []outCol, error) {
	left, lcols, err := g.genQueryOperand(s.Left, parent)
	if err != nil {
		return nil, nil, err
	}
	right, rcols, err := g.genQueryOperand(s.Right, parent)
	if err != nil {
		return nil, nil, err
	}
	if len(lcols) != len(rcols) {
		return nil, nil, semErr(s.Pos, "%s operands have different column counts (%d vs %d)", s.Op, len(lcols), len(rcols))
	}
	cols := make([]outCol, len(lcols))
	for i := range lcols {
		merged, err := unionColumnType(lcols[i], rcols[i])
		if err != nil {
			return nil, nil, semErr(s.Pos, "%s column %d: %v", s.Op, i+1, err)
		}
		cols[i] = merged
	}
	right = g.renameRows(right, rcols, cols)

	allFlag := xquery.Call("fn:false")
	if s.All {
		allFlag = xquery.Call("fn:true")
	}
	var rows xquery.Expr
	switch s.Op {
	case qfront.SetUnion:
		rows = &xquery.Seq{Items: []xquery.Expr{left, right}}
		if !s.All {
			rows = xquery.Call("fn-bea:distinct-rows", rows)
		}
	case qfront.SetExcept:
		rows = xquery.Call("fn-bea:rows-except", left, right, allFlag)
	case qfront.SetIntersect:
		rows = xquery.Call("fn-bea:rows-intersect", left, right, allFlag)
	default:
		return nil, nil, semErr(s.Pos, "unsupported set operation %v", s.Op)
	}
	return rows, cols, nil
}

func (g *generator) genQueryOperand(body qfront.QueryExpr, parent *qscope) (xquery.Expr, []outCol, error) {
	switch body := body.(type) {
	case *qfront.QuerySpec:
		return g.genQuerySpec(body, parent, nil)
	case *qfront.SetOpExpr:
		return g.genSetOp(body, parent)
	default:
		return nil, nil, semErr(body.Position(), "unsupported set operation operand %T", body)
	}
}

// unionColumnType merges the column descriptions of two set-operation
// operands: labels and element names come from the left, types promote.
func unionColumnType(l, r outCol) (outCol, error) {
	out := l
	out.Nullable = l.Nullable || r.Nullable
	if l.SQL == r.SQL {
		return out, nil
	}
	if numericRank(l.SQL) >= 0 && numericRank(r.SQL) >= 0 {
		if numericRank(r.SQL) > numericRank(l.SQL) {
			out.SQL = r.SQL
			out.Type = r.Type
		}
		return out, nil
	}
	if l.SQL == catalog.SQLUnknown || r.SQL == catalog.SQLUnknown {
		if l.SQL == catalog.SQLUnknown {
			out.SQL = r.SQL
			out.Type = r.Type
		}
		return out, nil
	}
	// CHAR and VARCHAR are compatible.
	if (l.SQL == catalog.SQLChar || l.SQL == catalog.SQLVarchar) &&
		(r.SQL == catalog.SQLChar || r.SQL == catalog.SQLVarchar) {
		out.SQL = catalog.SQLVarchar
		return out, nil
	}
	return outCol{}, fmt.Errorf("incompatible types %s and %s", l.SQL, r.SQL)
}

// renameRows rewrites a row sequence so its RECORD children carry the
// element names in want; a no-op when names already match.
func (g *generator) renameRows(rows xquery.Expr, have []outCol, want []outCol) xquery.Expr {
	same := true
	for i := range have {
		if have[i].ElementName != want[i].ElementName {
			same = false
			break
		}
	}
	if same {
		return rows
	}
	v := g.names.rowVar(0, zoneFrom)
	rec := &xquery.ElementCtor{Name: "RECORD"}
	for i := range have {
		rec.Content = append(rec.Content, condElem(want[i].ElementName,
			xquery.Call("fn:data", xquery.ChildPath(v, have[i].ElementName)),
			have[i].Nullable))
	}
	return &xquery.FLWOR{
		Clauses: []xquery.Clause{&xquery.For{Var: v, In: rows}},
		Return:  rec,
	}
}

// orderRows wraps a finished row sequence in an ordering FLWOR — used for
// ORDER BY over set operations, where ordering can only reference output
// columns (by name or ordinal, per SQL-92).
func (g *generator) orderRows(rows xquery.Expr, cols []outCol, orderBy []qfront.OrderItem, pos qfront.Pos) (xquery.Expr, error) {
	v := g.names.rowVar(0, zoneFrom)
	var specs []xquery.OrderSpec
	for _, item := range orderBy {
		col, err := orderColumn(item, cols)
		if err != nil {
			return nil, err
		}
		key := xquery.Expr(xquery.Call("fn:data", xquery.ChildPath(v, col.ElementName)))
		if col.Type != xdm.TypeUntyped {
			key = castTo(key, col.Type)
		}
		specs = append(specs, xquery.OrderSpec{Expr: key, Descending: item.Desc})
	}
	return &xquery.FLWOR{
		Clauses: []xquery.Clause{
			&xquery.For{Var: v, In: rows},
			&xquery.OrderByClause{Specs: specs},
		},
		Return: xquery.VarRef(v),
	}, nil
}

func orderColumn(item qfront.OrderItem, cols []outCol) (outCol, error) {
	switch e := item.Expr.(type) {
	case *qfront.Literal:
		if e.Type == qfront.LitInteger {
			n, err := strconv.Atoi(e.Text)
			if err != nil || n < 1 || n > len(cols) {
				return outCol{}, semErr(e.Pos, "ORDER BY position %s is not in the select list", e.Text)
			}
			return cols[n-1], nil
		}
	case *qfront.ColumnRef:
		if e.Qualifier == "" {
			for _, c := range cols {
				if strings.EqualFold(c.Label, e.Column) {
					return c, nil
				}
			}
		}
	}
	return outCol{}, semErr(item.Pos, "ORDER BY over a set operation must reference an output column name or ordinal")
}

// selItem is a prepared projection item (after stage two's wildcard
// expansion and resolution).
type selItem struct {
	ElementName string
	Label       string
	Expr        xquery.Expr // translated value expression (atomized)
	T           typeInfo
	// Source is the original SQL expression (nil for wildcard-expanded
	// items, which carry Resolved instead); used for ORDER BY alias and
	// expression matching.
	Source qfront.Expr
}

// genQuerySpec translates one SELECT block into a rows expression.
func (g *generator) genQuerySpec(spec *qfront.QuerySpec, parent *qscope, orderBy []qfront.OrderItem) (xquery.Expr, []outCol, error) {
	ctxID := g.ctxID(spec)
	grouped := len(spec.GroupBy) > 0 || specHasAggregates(spec)

	if len(spec.From) == 0 {
		return g.genFromlessSpec(spec, parent)
	}

	fr, err := g.buildFrom(spec.From, parent, ctxID)
	if err != nil {
		return nil, nil, err
	}

	var whereParts []xquery.Expr
	whereParts = append(whereParts, fr.conjuncts...)
	if spec.Where != nil {
		if qfront.ContainsAggregate(spec.Where) {
			return nil, nil, semErr(spec.Where.Position(), "aggregate functions are not allowed in WHERE")
		}
		cond, _, err := g.genExpr(spec.Where, fr.scope, nil)
		if err != nil {
			return nil, nil, err
		}
		whereParts = append(whereParts, cond)
	}
	where := andAll(whereParts)

	if grouped {
		return g.genGroupedSpec(spec, fr, where, orderBy, ctxID)
	}
	return g.genPlainSpec(spec, fr, where, orderBy, ctxID)
}

// genFromlessSpec handles SELECT without FROM (constant rows), which some
// reporting tools issue as connectivity probes.
func (g *generator) genFromlessSpec(spec *qfront.QuerySpec, parent *qscope) (xquery.Expr, []outCol, error) {
	if spec.Where != nil || len(spec.GroupBy) > 0 || spec.Having != nil {
		return nil, nil, semErr(spec.Pos, "SELECT without FROM cannot have WHERE, GROUP BY or HAVING")
	}
	sc := &qscope{parent: parent}
	items, cols, err := g.genSelectItems(spec, sc, nil)
	if err != nil {
		return nil, nil, err
	}
	return recordCtor(items), cols, nil
}

// genPlainSpec is the non-aggregated path: the paper's Figure 7 mapping of
// SELECT-FROM-WHERE-ORDER BY onto return-for-where-order by.
func (g *generator) genPlainSpec(spec *qfront.QuerySpec, fr *fromResult, where xquery.Expr, orderBy []qfront.OrderItem, ctxID int) (xquery.Expr, []outCol, error) {
	items, cols, err := g.genSelectItems(spec, fr.scope, nil)
	if err != nil {
		return nil, nil, err
	}

	clauses := append([]xquery.Clause{}, fr.clauses...)
	if where != nil {
		clauses = append(clauses, &xquery.Where{Cond: where})
	}
	if len(orderBy) > 0 {
		specs, err := g.orderSpecs(orderBy, items, fr.scope, nil)
		if err != nil {
			return nil, nil, err
		}
		clauses = append(clauses, &xquery.OrderByClause{Specs: specs})
	}

	rows := xquery.Expr(&xquery.FLWOR{Clauses: clauses, Return: recordCtor(items)})
	if spec.Distinct {
		rows = xquery.Call("fn-bea:distinct-rows", rows)
	}
	return rows, cols, nil
}

// genSelectItems expands wildcards (stage two, Figure 6) and translates
// each projection item. agg is non-nil in grouped queries.
func (g *generator) genSelectItems(spec *qfront.QuerySpec, sc *qscope, agg *aggEnv) ([]selItem, []outCol, error) {
	var items []selItem
	exprCount := 0
	for _, item := range spec.Items {
		switch {
		case item.Wildcard && item.Qualifier == "":
			if agg != nil {
				return nil, nil, semErr(item.Pos, "SELECT * is not allowed with GROUP BY or aggregates")
			}
			g.stat.wildcards++
			items = append(items, g.expandWildcard(sc)...)
		case item.Wildcard:
			if agg != nil {
				return nil, nil, semErr(item.Pos, "SELECT %s.* is not allowed with GROUP BY or aggregates", item.Qualifier)
			}
			b, ok := sc.bindingByName(item.Qualifier)
			if !ok {
				return nil, nil, semErr(item.Pos, "unknown table or alias %s", item.Qualifier)
			}
			g.stat.wildcards++
			items = append(items, expandBinding(b, len(sc.bindings) > 1)...)
		default:
			xe, ti, err := g.genExpr(item.Expr, sc, agg)
			if err != nil {
				return nil, nil, err
			}
			elemName, label := outputNames(item, &exprCount)
			items = append(items, selItem{
				ElementName: elemName,
				Label:       label,
				Expr:        atomized(typedExpr{E: xe, T: ti}),
				T:           ti,
				Source:      item.Expr,
			})
		}
	}
	if len(items) == 0 {
		return nil, nil, semErr(spec.Pos, "empty select list")
	}
	cols := make([]outCol, len(items))
	for i, it := range items {
		cols[i] = outCol{
			Label:       it.Label,
			ElementName: it.ElementName,
			SQL:         it.T.SQL,
			Type:        it.T.X,
			Nullable:    it.T.Nullable,
			Precision:   it.T.Precision,
			Scale:       it.T.Scale,
		}
	}
	return items, cols, nil
}

// expandWildcard expands a bare `*` over every visible range binding. With
// a single binding, bare column names are used (the common single-table
// case); with several, element names are qualified the way the paper's
// examples qualify them.
func (g *generator) expandWildcard(sc *qscope) []selItem {
	real := 0
	for _, b := range sc.bindings {
		if !b.aliasOnly {
			real++
		}
	}
	var items []selItem
	for _, b := range sc.bindings {
		if b.aliasOnly {
			continue
		}
		items = append(items, expandBinding(b, real > 1)...)
	}
	return items
}

func expandBinding(b *binding, qualify bool) []selItem {
	var items []selItem
	for _, c := range b.Cols {
		name := c.Name
		if qualify && b.Name != "" {
			name = b.Name + "." + c.Name
		}
		items = append(items, selItem{
			ElementName: xmlElementName(name),
			Label:       c.Name,
			Expr:        xquery.Call("fn:data", b.access(c)),
			T: typeInfo{SQL: c.SQL, X: c.Type, Nullable: c.Nullable,
				Precision: c.Precision, Scale: c.Scale},
		})
	}
	return items
}

// outputNames derives the XML element name and the JDBC label for a
// projection item: alias when present; for plain column references the
// element name preserves the written qualification (the paper's
// <CUSTOMERS.CUSTOMERID> naming) while the label is the bare column name;
// other expressions get generated EXPR<n> names.
func outputNames(item qfront.SelectItem, exprCount *int) (elemName, label string) {
	if item.Alias != "" {
		up := strings.ToUpper(item.Alias)
		return xmlElementName(up), up
	}
	if ref, ok := item.Expr.(*qfront.ColumnRef); ok {
		elem := ref.Column
		if ref.Qualifier != "" {
			elem = ref.Qualifier + "." + ref.Column
		}
		return xmlElementName(elem), ref.Column
	}
	*exprCount++
	name := fmt.Sprintf("EXPR%d", *exprCount)
	return name, name
}

// xmlElementName maps a SQL-derived name onto a well-formed XML element
// name. SQL identifiers admit characters XML names cannot ('#' and '$'
// are legal identifier characters, and quoted identifiers are arbitrary
// text); each offending character becomes '_', and a leading character
// that cannot start an XML name gets an '_' prefix. Only the wire element
// name is rewritten — the JDBC column label keeps the SQL spelling.
func xmlElementName(s string) string {
	nameChar := func(r rune) bool {
		return r == '_' || r == '.' || r == '-' ||
			(r >= 'A' && r <= 'Z') || (r >= 'a' && r <= 'z') ||
			(r >= '0' && r <= '9')
	}
	var b strings.Builder
	for _, r := range s {
		if nameChar(r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out == "" {
		return "_"
	}
	if c := out[0]; c != '_' && !(c >= 'A' && c <= 'Z') && !(c >= 'a' && c <= 'z') {
		out = "_" + out
	}
	return out
}

// recordCtor builds the RECORD element for the projection. Nullable
// columns construct conditionally so SQL NULL travels as an *absent*
// element, never an empty one — the distinction the result decoders and
// aggregate/DISTINCT semantics depend on.
func recordCtor(items []selItem) *xquery.ElementCtor {
	rec := &xquery.ElementCtor{Name: "RECORD"}
	for _, it := range items {
		rec.Content = append(rec.Content, condElem(it.ElementName, it.Expr, it.T.Nullable))
	}
	return rec
}

// condElem renders <name>{value}</name>, guarded by an emptiness check
// when the value may be NULL.
func condElem(name string, value xquery.Expr, nullable bool) xquery.ElemContent {
	if !nullable {
		return xquery.TextElem(name, value)
	}
	return &xquery.Enclosed{Expr: &xquery.If{
		Cond: xquery.Call("fn:empty", value),
		Then: &xquery.EmptySeq{},
		Else: xquery.TextElem(name, value),
	}}
}

// orderSpecs resolves ORDER BY items against the select list (ordinals and
// aliases) or the query scope, producing typed sort keys.
func (g *generator) orderSpecs(orderBy []qfront.OrderItem, items []selItem, sc *qscope, agg *aggEnv) ([]xquery.OrderSpec, error) {
	var specs []xquery.OrderSpec
	for _, item := range orderBy {
		var key xquery.Expr
		var t typeInfo
		switch e := item.Expr.(type) {
		case *qfront.Literal:
			if e.Type != qfront.LitInteger {
				return nil, semErr(e.Pos, "ORDER BY literal must be an integer ordinal")
			}
			n, err := strconv.Atoi(e.Text)
			if err != nil || n < 1 || n > len(items) {
				return nil, semErr(e.Pos, "ORDER BY position %s is not in the select list", e.Text)
			}
			key, t = items[n-1].Expr, items[n-1].T
		case *qfront.ColumnRef:
			if it, ok := matchAliasItem(e, items); ok {
				key, t = it.Expr, it.T
				break
			}
			xe, ti, err := g.genExpr(e, sc, agg)
			if err != nil {
				return nil, err
			}
			key, t = atomized(typedExpr{E: xe, T: ti}), ti
		default:
			// Match a select expression textually first (SQL-92 allows
			// ordering by a select expression), else translate fresh.
			if it, ok := matchExprItem(e, items); ok {
				key, t = it.Expr, it.T
				break
			}
			xe, ti, err := g.genExpr(e, sc, agg)
			if err != nil {
				return nil, err
			}
			key, t = atomized(typedExpr{E: xe, T: ti}), ti
		}
		if t.X != xdm.TypeUntyped && t.X != xdm.TypeString {
			key = castTo(key, t.X)
		}
		specs = append(specs, xquery.OrderSpec{Expr: key, Descending: item.Desc})
	}
	return specs, nil
}

func matchAliasItem(ref *qfront.ColumnRef, items []selItem) (selItem, bool) {
	if ref.Qualifier != "" {
		return selItem{}, false
	}
	for _, it := range items {
		if strings.EqualFold(it.Label, ref.Column) && it.Source != nil {
			if _, isRef := it.Source.(*qfront.ColumnRef); !isRef {
				// Alias of a computed expression.
				return it, true
			}
		}
		// Exact alias match.
		if strings.EqualFold(it.ElementName, ref.Column) {
			return it, true
		}
	}
	return selItem{}, false
}

func matchExprItem(e qfront.Expr, items []selItem) (selItem, bool) {
	want := strings.ToUpper(e.SQL())
	for _, it := range items {
		if it.Source != nil && strings.ToUpper(it.Source.SQL()) == want {
			return it, true
		}
	}
	return selItem{}, false
}

func specHasAggregates(spec *qfront.QuerySpec) bool {
	for _, item := range spec.Items {
		if item.Expr != nil && qfront.ContainsAggregate(item.Expr) {
			return true
		}
	}
	return spec.Having != nil && qfront.ContainsAggregate(spec.Having)
}
