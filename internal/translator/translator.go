// Package translator implements the paper's primary contribution: the
// SQL-92 SELECT → XQuery translator at the heart of the AquaLogic DSP JDBC
// driver (§3 of the paper).
//
// Translation is progressive and step-wise (§3.4.1):
//
//	stage one   — syntactic recognition: a query front end (SQL-92 in
//	              internal/sqlparser; any qfront.Frontend) lexes and parses
//	              its concrete syntax into the shared typed AST
//	              (internal/qfront) and a query-context tree is captured
//	              (one context per (sub)query, §3.4.3);
//	stage two   — semantic preparation: table metadata is fetched (and
//	              cached) from the catalog, wildcards are expanded, column
//	              references are resolved and validated, GROUP BY rules are
//	              checked, and expression datatypes are inferred bottom-up
//	              with SQL promotion rules (§3.5);
//	stage three — generation: each resultset node (RSN — table, query, join,
//	              set operation; §3.4.2) renders itself into an XQuery
//	              expression, and the pieces are assembled into a prolog of
//	              schema imports plus a RECORDSET-constructing body.
//
// The translator deliberately does not optimize the generated XQuery; the
// paper leaves optimization to the XQuery engine. It generates "patterned"
// queries — the shapes shown in the paper's Examples 4–12 — that an engine
// can recognize and rewrite.
package translator

import (
	"context"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/obsv"
	"repro/internal/qfront"
	"repro/internal/xquery"
)

// ResultMode selects the result-handling strategy of §4.
type ResultMode int

const (
	// ModeXML returns the natural RECORDSET/RECORD XML (the baseline the
	// paper's prototype started with).
	ModeXML ResultMode = iota
	// ModeText wraps the query so it returns delimiter-separated text
	// (§4's optimization): rows prefixed with the row delimiter, column
	// values prefixed with the column delimiter, values escaped with
	// fn-bea:xml-escape so delimiters cannot appear in data.
	ModeText
)

// Default §4 delimiters: each row starts with '>' and each column value is
// prefixed by '<' (the characters are safe because values are XML-escaped).
const (
	RowDelimiter    = ">"
	ColumnDelimiter = "<"
)

// Options configures a translation.
type Options struct {
	Mode ResultMode
	// DefaultCatalog is the application name unqualified tables belong
	// to; used only for validating fully qualified names.
	DefaultCatalog string
}

// ResultColumn describes one column of the translated query's result, in
// projection order — the computed result schema the JDBC driver uses to
// parse text-encoded results and answer ResultSetMetaData calls.
type ResultColumn struct {
	// Label is the JDBC column label: the alias when given, else the bare
	// column name, else a generated EXPR<n> name.
	Label string
	// ElementName is the XML element name used in RECORD output, which
	// preserves qualification the way the paper does
	// (<CUSTOMERS.CUSTOMERID>).
	ElementName string
	Type        catalog.SQLType
	Nullable    bool
	// Precision and Scale are declared column facets (zero for computed
	// expressions), surfaced through database/sql ColumnTypes.
	Precision int
	Scale     int
}

// Result is a completed translation.
type Result struct {
	// Query is the generated XQuery AST; Result.XQuery() serializes it.
	Query *xquery.Query
	// Columns is the computed result schema.
	Columns []ResultColumn
	// ParamCount is the number of `?` markers; the driver binds external
	// variables $p1…$pN at execution time.
	ParamCount int
	// ParamTypes holds the inferred SQL type of each parameter (SQLUnknown
	// when the context did not determine one).
	ParamTypes []catalog.SQLType
	// Contexts is the query-context tree captured in stage one (exposed
	// for inspection and tests; Figure 4 of the paper).
	Contexts *Context
	// Mode records which result handling the query was generated for.
	Mode ResultMode
	// Sources lists the federation backends the statement's base tables
	// and procedures resolved against, in first-touch order with
	// duplicates removed (nil when the metadata source does not name
	// sources — the single-backend configuration).
	Sources []string

	// xq is the serialized query text, filled during traced translation
	// (the serialize stage) and never mutated afterwards.
	xq string
}

// XQuery serializes the generated query (returning the text cached by the
// serialize stage when the translation was traced).
func (r *Result) XQuery() string {
	if r.xq != "" {
		return r.xq
	}
	return r.Query.Serialize()
}

// Translator converts SQL-92 SELECT statements into XQuery. Metadata is
// fetched through Meta; wrap the source in a catalog.Cache to reproduce the
// driver's fetch-and-cache behavior.
type Translator struct {
	Meta    catalog.Source
	Options Options
}

// New builds a translator over a metadata source with default options.
func New(meta catalog.Source) *Translator {
	return &Translator{Meta: meta}
}

// SemanticError is a stage-two validation failure: syntactically valid SQL
// that violates SQL semantics (unknown column, ambiguous name, GROUP BY
// violations, set-operation arity mismatch, …).
type SemanticError struct {
	Pos qfront.Pos
	Msg string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("sql semantic error at %s: %s", e.Pos, e.Msg)
}

func semErr(pos qfront.Pos, format string, args ...any) error {
	return &SemanticError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// TranslateFrontend runs the full pipeline with an explicit query front
// end: stage one (lex + parse, with its own stage spans) is delegated to
// fe, and the statement it emits flows through the front-end-agnostic
// kernel (stages two and three). This is the seam every dialect enters
// through; the SQL-language helpers in sqldefault.go are wrappers over
// it.
func (t *Translator) TranslateFrontend(ctx context.Context, fe qfront.Frontend, text string, tr *obsv.Trace) (*Result, error) {
	stmt, err := fe.Parse(text, tr)
	if err != nil {
		obsv.Global.TranslateErrors.Inc()
		return nil, err
	}
	return t.translateStmt(ctx, stmt, tr)
}

// TranslateStmt translates an already-parsed statement (used by the driver,
// which parses once to count parameters and validate early).
func (t *Translator) TranslateStmt(stmt *qfront.SelectStmt) (*Result, error) {
	return t.translateStmt(context.Background(), stmt, nil)
}

func (t *Translator) translateStmt(ctx context.Context, stmt *qfront.SelectStmt, tr *obsv.Trace) (*Result, error) {
	// Stage one's semantic capture: the query-context tree (§3.4.3).
	sp := tr.StartStage(obsv.StageValidate)
	contexts := CaptureContexts(stmt)
	sp.Add("contexts", int64(contexts.Count()))
	sp.End()

	// Stages two and three share the generation state: stage two resolves
	// and validates as each RSN is prepared, stage three renders it. The
	// restructure span covers that combined RSN preparation.
	g := newGenerator(ctx, t.Meta, t.Options, contexts)
	sp = tr.StartStage(obsv.StageRestructure)
	rows, cols, err := g.genSelectStmt(stmt, nil)
	if err != nil {
		obsv.Global.TranslateErrors.Inc()
		return nil, err
	}
	sp.Add("tables", g.stat.tables)
	sp.Add("wildcards", g.stat.wildcards)
	sp.Add("variables", int64(g.names.n))
	sp.End()

	// Generate: assemble the prolog, result wrapper, and computed schema.
	sp = tr.StartStage(obsv.StageGenerate)
	body := recordsetCtor(rows)
	q := &xquery.Query{Body: body}
	resultCols := make([]ResultColumn, len(cols))
	for i, c := range cols {
		resultCols[i] = ResultColumn{
			Label:       c.Label,
			ElementName: c.ElementName,
			Type:        c.SQL,
			Nullable:    c.Nullable,
			Precision:   c.Precision,
			Scale:       c.Scale,
		}
	}
	if t.Options.Mode == ModeText {
		q.Body = wrapTextMode(body, resultCols)
	}
	q.Prolog.SchemaImports = g.schemaImports()
	res := &Result{
		Query:      q,
		Columns:    resultCols,
		ParamCount: stmt.ParamCount,
		ParamTypes: g.paramTypes(stmt.ParamCount),
		Contexts:   contexts,
		Mode:       t.Options.Mode,
		Sources:    g.sources,
	}
	sp.Add("columns", int64(len(resultCols)))
	sp.Add("imports", int64(len(q.Prolog.SchemaImports)))
	sp.End()

	// Serialize eagerly only when traced, so the span covers the real
	// rendering cost; the untraced path keeps serializing lazily.
	if tr != nil {
		sp = tr.StartStage(obsv.StageSerialize)
		res.xq = q.Serialize()
		sp.SetOutput(len(res.xq))
		sp.End()
	}

	obsv.Global.QueriesTranslated.Inc()
	return res, nil
}

// recordsetCtor wraps a row-sequence expression in the RECORDSET element
// the paper's generated queries return.
func recordsetCtor(rows xquery.Expr) *xquery.ElementCtor {
	return &xquery.ElementCtor{Name: "RECORDSET", Content: []xquery.ElemContent{
		&xquery.Enclosed{Expr: rows},
	}}
}
