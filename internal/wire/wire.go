// Package wire defines the JSON message vocabulary of the aqlserve wire
// protocol — the client/server boundary the paper's architecture draws
// between the thin JDBC driver and the AquaLogic DSP server. Both ends of
// the wire (internal/server and internal/remoteclient) share these types,
// so the protocol cannot skew between them.
//
// Values travel in lexical form tagged with their atomic type: the client
// re-parses them with xdm.ParseAtomic, reproducing the exact atomic values
// the in-process result path would have decoded. SQL NULL is a JSON null
// (a nil *Atom). Errors travel as (kind, op, message) triples and are
// reconstructed client-side as typed aqerr.QueryError values, so
// errors.As-based handling works identically against a remote server and
// an in-process platform.
package wire

import (
	"repro/internal/catalog"
	"repro/internal/obsv"
	"repro/internal/translator"
)

// ModeName renders a result mode as its wire name ("text" or "xml").
func ModeName(mode translator.ResultMode) string {
	if mode == translator.ModeXML {
		return "xml"
	}
	return "text"
}

// Protocol endpoints, rooted under the version prefix.
const (
	PathHandshake    = "/v1/handshake"
	PathPrepare      = "/v1/prepare"
	PathExecute      = "/v1/execute"
	PathFetch        = "/v1/fetch"
	PathCloseCursor  = "/v1/cursor/close"
	PathCloseSession = "/v1/session/close"
	PathExplain      = "/v1/explain"
	PathCreateView   = "/v1/view"
	PathMetaLookup   = "/v1/meta/lookup"
	PathMetaTables   = "/v1/meta/tables"
	PathMetaProcs    = "/v1/meta/procedures"
	PathStats        = "/v1/stats"
)

// Atom is one non-NULL atomic value in transit: the lexical form plus the
// xdm.AtomicType it parses back into. NULL is represented as a nil *Atom.
type Atom struct {
	T int    `json:"t"`
	V string `json:"v"`
}

// Column mirrors resultset.Column across the wire.
type Column struct {
	Label       string `json:"label"`
	ElementName string `json:"element"`
	Type        int    `json:"type"` // catalog.SQLType
	Nullable    bool   `json:"nullable"`
	Precision   int    `json:"precision,omitempty"`
	Scale       int    `json:"scale,omitempty"`
}

// Error is a typed failure in transit (aqerr.QueryError flattened).
// RetryAfterMS is the server's backoff hint on shed responses: "come back
// in this long" — zero means no hint (the client uses its own backoff).
type Error struct {
	Kind         string `json:"kind"` // aqerr.Kind wire name
	Op           string `json:"op"`
	Msg          string `json:"msg"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// BudgetHeader carries the client's remaining deadline budget, in whole
// milliseconds, on every verb. The server clamps the request's context —
// and, for execute, the evaluation context — to it, so work the client
// has already abandoned is never evaluated. Absent or zero means no
// client deadline.
const BudgetHeader = "X-Aql-Budget-Ms"

// Handshake opens a session.
type HandshakeRequest struct {
	Client string `json:"client,omitempty"` // free-form client identity
}

// HandshakeResponse returns the session token every later request carries.
type HandshakeResponse struct {
	Session string `json:"session"`
}

// PrepareRequest compiles a statement into the session's prepared table.
// Dialect names the query language the SQL field is written in; empty
// selects SQL-92, so pre-dialect clients interoperate unchanged.
type PrepareRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
	Mode    string `json:"mode"`              // "text" (default) or "xml"
	Dialect string `json:"dialect,omitempty"` // query language; "" = "sql"
}

// PrepareResponse describes the prepared statement.
type PrepareResponse struct {
	Stmt       int64    `json:"stmt"`
	Columns    []Column `json:"columns"`
	ParamCount int      `json:"params"`
}

// ExecuteRequest starts an evaluation: either of a prepared statement
// (Stmt > 0) or of ad-hoc SQL (Stmt == 0, SQL/Mode set).
//
// ExecKey is the idempotency token: a client-unique key for this logical
// execute. When a retried request re-presents a key the session has
// already executed, the server replays the original cursor instead of
// starting a second evaluation — a response lost to the network never
// leaks a duplicate running query. BudgetMS is the client's remaining
// deadline in milliseconds; the server clamps the evaluation context to
// min(server QueryTimeout, BudgetMS), so abandoned work is not evaluated.
type ExecuteRequest struct {
	Session  string  `json:"session"`
	Stmt     int64   `json:"stmt,omitempty"`
	SQL      string  `json:"sql,omitempty"`
	Mode     string  `json:"mode,omitempty"`
	Dialect  string  `json:"dialect,omitempty"` // ad-hoc SQL's language; "" = "sql"
	Args     []*Atom `json:"args,omitempty"`
	ExecKey  string  `json:"exec_key,omitempty"`
	BudgetMS int64   `json:"budget_ms,omitempty"`
}

// ExecuteResponse hands back the server-side cursor. Rows stream through
// fetch calls; the evaluation is already running when this returns.
type ExecuteResponse struct {
	Cursor  int64    `json:"cursor"`
	Columns []Column `json:"columns"`
}

// FetchRequest pulls the next chunk of rows from a cursor.
//
// Seq makes fetch idempotent: the client numbers chunks 1, 2, 3, … per
// cursor, and the server caches the last chunk it produced. Re-presenting
// the current sequence number replays that chunk byte-identically (a retry
// or a hedged duplicate never skips or doubles rows); presenting the next
// number advances the cursor. Seq 0 selects the legacy non-replayable
// behavior (every fetch advances).
type FetchRequest struct {
	Session string `json:"session"`
	Cursor  int64  `json:"cursor"`
	MaxRows int    `json:"max_rows,omitempty"`
	Seq     int64  `json:"seq,omitempty"`
}

// FetchResponse carries up to MaxRows decoded rows. EOF marks stream end;
// Error carries a mid-stream failure and may accompany rows already
// produced (a truncated stream delivers its prefix *and* the error, never
// silently).
type FetchResponse struct {
	Rows  [][]*Atom `json:"rows,omitempty"`
	EOF   bool      `json:"eof,omitempty"`
	Error *Error    `json:"error,omitempty"`
}

// CloseCursorRequest releases a cursor (idempotent: closing an unknown or
// already-closed cursor succeeds with Closed=false).
type CloseCursorRequest struct {
	Session string `json:"session"`
	Cursor  int64  `json:"cursor"`
}

// CloseCursorResponse reports whether a live cursor was actually closed.
type CloseCursorResponse struct {
	Closed bool `json:"closed"`
}

// CloseSessionRequest ends a session, closing its cursors and prepared
// statements.
type CloseSessionRequest struct {
	Session string `json:"session"`
}

// CloseSessionResponse acknowledges a session close (idempotent).
type CloseSessionResponse struct{}

// ExplainRequest compiles a statement and renders its plan.
type ExplainRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
	Mode    string `json:"mode"`
	Dialect string `json:"dialect,omitempty"` // query language; "" = "sql"
}

// ExplainResponse is the rendered plan text.
type ExplainResponse struct {
	Text string `json:"text"`
}

// CreateViewRequest registers a logical data service (CREATE VIEW).
type CreateViewRequest struct {
	Session string `json:"session"`
	Path    string `json:"path"`
	Name    string `json:"name"`
	SQL     string `json:"sql"`
}

// CreateViewResponse acknowledges a view definition.
type CreateViewResponse struct{}

// LookupRequest resolves one table reference.
type LookupRequest struct {
	Session string `json:"session,omitempty"`
	Catalog string `json:"catalog,omitempty"`
	Schema  string `json:"schema,omitempty"`
	Table   string `json:"table"`
}

// LookupResponse returns the metadata, or the typed catalog failure:
// NotFound and Ambiguous reconstruct catalog.NotFoundError and
// catalog.AmbiguousError client-side, so a remote translator sees the
// same error shapes an in-process one does.
type LookupResponse struct {
	Meta      *catalog.TableMeta `json:"meta,omitempty"`
	NotFound  bool               `json:"not_found,omitempty"`
	Ambiguous []string           `json:"ambiguous,omitempty"`
}

// MetasRequest lists table or procedure metadata.
type MetasRequest struct {
	Session string `json:"session,omitempty"`
}

// MetasResponse lists table or procedure metadata.
type MetasResponse struct {
	Metas []*catalog.TableMeta `json:"metas"`
}

// StatsRequest asks for the server and pipeline counters.
type StatsRequest struct{}

// ErrorResponse is the body of any failed request.
type ErrorResponse struct {
	Error *Error `json:"error"`
}

// ServerStats is the server front end's own counter block.
type ServerStats struct {
	SessionsOpen      int64 `json:"sessions_open"`
	SessionsOpened    int64 `json:"sessions_opened"`
	SessionsReaped    int64 `json:"sessions_reaped"`
	CursorsOpen       int64 `json:"cursors_open"`
	CursorsOpened     int64 `json:"cursors_opened"`
	CursorsReaped     int64 `json:"cursors_reaped"`
	QueriesInFlight   int64 `json:"queries_in_flight"`
	PeakInFlight      int64 `json:"peak_in_flight"`
	AdmissionRejected int64 `json:"admission_rejected"`

	// Cost-aware admission gauges (PR 8). Weighted figures are in admission
	// slots: a query's weight is its compiled cost estimate divided by the
	// configured cost-per-slot, so cheap statements weigh 1 and expensive
	// scans weigh many.
	WeightedInFlight int64 `json:"weighted_in_flight"`
	WeightedCapacity int64 `json:"weighted_capacity"`
	WeightedPeak     int64 `json:"weighted_peak"`
	QueueDepth       int64 `json:"queue_depth"`
	QueuePeak        int64 `json:"queue_peak"`
	// Shed counters by reason: queue overflow, deadline-aware queue
	// timeout, and brownout (predicted cost over the degraded ceiling).
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedQueueTimeout int64 `json:"shed_queue_timeout"`
	ShedBrownout     int64 `json:"shed_brownout"`
	// BrownoutLevel is the current degradation level (0 = normal); each
	// level halves the maximum admissible query weight.
	BrownoutLevel int64 `json:"brownout_level"`
	// Idempotent replays served from cursor state instead of re-running.
	ExecReplays  int64 `json:"exec_replays"`
	FetchReplays int64 `json:"fetch_replays"`
}

// StatsResponse bundles the server counters with the process-wide
// pipeline snapshot.
type StatsResponse struct {
	Server   ServerStats   `json:"server"`
	Pipeline obsv.Snapshot `json:"pipeline"`
}
