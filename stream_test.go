// Differential oracle for the streaming result pipeline: every statement
// in the compiled corpus, in both result modes, must deliver byte-identical
// rows through the pull cursor (rows decoded one Next at a time while the
// evaluation runs) and the materialized path (full evaluation, then
// whole-payload decode). FETCH FIRST short-circuiting is pinned by tuple
// counters: a limit of 10 over a 100 000-row source may evaluate only O(10)
// tuples on every path.
package aqualogic

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/demo"
	"repro/internal/obsv"
	"repro/internal/resultset"
	"repro/internal/xdm"
)

// materializedOracle executes a compiled statement the pre-streaming way —
// evaluate to completion, then decode the whole payload — as the byte
// oracle the cursor path must match.
func materializedOracle(p *Platform, mode ResultMode, sql string, args []any) (*Rows, error) {
	cq, err := p.Compile(sql, mode)
	if err != nil {
		return nil, err
	}
	if len(args) != cq.Res.ParamCount {
		return nil, fmt.Errorf("statement has %d parameter(s), got %d", cq.Res.ParamCount, len(args))
	}
	ext := make(map[string]Sequence, len(args))
	for i, a := range args {
		v, err := ToAtomic(a)
		if err != nil {
			return nil, err
		}
		ext[fmt.Sprintf("p%d", i+1)] = xdm.SequenceOf(v)
	}
	out, err := p.Engine.EvalPlanWithTrace(context.Background(), cq.Plan, ext, nil)
	if err != nil {
		return nil, err
	}
	cols := make([]resultset.Column, len(cq.Res.Columns))
	for i, c := range cq.Res.Columns {
		cols[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName, Type: c.Type, Nullable: c.Nullable}
	}
	if mode == ModeText {
		it, err := out.Singleton()
		if err != nil {
			return nil, err
		}
		return resultset.FromText(xdm.StringValue(it), cols)
	}
	return resultset.FromXML(out, cols)
}

// marshalStreamed renders a live streaming result row by row — the genuine
// pull path, no Materialize — in marshalRows's canonical format.
func marshalStreamed(r *Rows) (string, error) {
	var b strings.Builder
	for _, c := range r.Columns() {
		fmt.Fprintf(&b, "[%s]", c.Label)
	}
	b.WriteByte('\n')
	for r.Next() {
		for i := range r.Columns() {
			s, ok, err := r.String(i)
			switch {
			case err != nil:
				fmt.Fprintf(&b, "|!%v", err)
			case !ok:
				b.WriteString("|NULL")
			default:
				fmt.Fprintf(&b, "|%s", s)
			}
		}
		b.WriteByte('\n')
	}
	if err := r.Err(); err != nil {
		return "", err
	}
	return b.String(), nil
}

// TestStreamedMatchesMaterialized is the streaming differential: the pull
// cursor and the materialized decode must agree byte-for-byte over the
// whole corpus in both result modes.
func TestStreamedMatchesMaterialized(t *testing.T) {
	p := Demo()
	streamable := 0
	for _, mode := range []ResultMode{ModeXML, ModeText} {
		for _, sql := range compiledCorpus() {
			args := chaosArgs(strings.Count(sql, "?"))
			srows, err := p.QueryMode(mode, sql, args...)
			if err != nil {
				t.Fatalf("mode %v: %q: streamed query: %v", mode, sql, err)
			}
			got, err := marshalStreamed(srows)
			if err != nil {
				t.Fatalf("mode %v: %q: streamed iteration: %v", mode, sql, err)
			}
			mrows, err := materializedOracle(p, mode, sql, args)
			if err != nil {
				t.Fatalf("mode %v: %q: materialized oracle: %v", mode, sql, err)
			}
			if want := marshalRows(mrows); got != want {
				t.Fatalf("mode %v: %q: streamed rows diverged from materialized decode\ngot:  %s\nwant: %s",
					mode, sql, got, want)
			}
			if cq, err := p.Compile(sql, mode); err == nil && cq.Streamable() {
				streamable++
			}
		}
	}
	// The decomposition must actually engage on the corpus, not fall back to
	// materialized everywhere.
	if streamable < len(compiledCorpus()) {
		t.Fatalf("only %d/%d (statement, mode) pairs streamed", streamable, 2*len(compiledCorpus()))
	}
}

// TestStreamedRowsMaterialize: a streaming result consumed partway can be
// materialized for scrollable use; rows already consumed are not replayed,
// and scroll operations work on the remainder.
func TestStreamedRowsMaterialize(t *testing.T) {
	p := Demo()
	rows, err := p.Query("SELECT CUSTOMERID FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row (err=%v)", rows.Err())
	}
	if err := rows.Materialize(); err != nil {
		t.Fatal(err)
	}
	rest := rows.Len()
	if rest != 49 { // 50 demo customers, one already consumed
		t.Fatalf("materialized remainder = %d rows, want 49", rest)
	}
	rows.Reset()
	n := 0
	for rows.Next() {
		n++
	}
	if n != rest {
		t.Fatalf("re-scan saw %d rows, want %d", n, rest)
	}
	rows.Close()
	rows.Close() // idempotent
	if rows.Next() {
		t.Fatal("Next after Close must report no rows")
	}
}

// TestQueryStreamCancellation: cancelling the caller's context mid-stream
// surfaces a context error from rows.Err, not a silent short read.
func TestQueryStreamCancellation(t *testing.T) {
	app, _, engine := demo.Setup(demo.Sizes{Customers: 5000, PaymentsPerCustomer: 1, Orders: 1, ItemsPerOrder: 1})
	p := New(app, engine)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := p.QueryStream(ctx, "SELECT CUSTOMERID FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row (err=%v)", rows.Err())
	}
	cancel()
	n := 0
	for rows.Next() {
		n++ // buffered rows may still drain
	}
	if err := rows.Err(); err == nil {
		if n >= 4999 {
			t.Skip("evaluation finished before cancellation landed")
		}
		t.Fatalf("cancelled stream ended silently after %d rows", n)
	}
}

// TestFetchFirstShortCircuit is the acceptance pin: FETCH FIRST 10 ROWS
// ONLY over a 100 000-row source evaluates O(10) tuples — streamed,
// materialized-planned, and naive — and the facade returns exactly 10 rows.
func TestFetchFirstShortCircuit(t *testing.T) {
	app, _, engine := demo.Setup(demo.Sizes{Customers: 100000, PaymentsPerCustomer: 0, Orders: 1, ItemsPerOrder: 1})
	p := New(app, engine)
	const sql = "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS FETCH FIRST 10 ROWS ONLY"

	for _, mode := range []ResultMode{ModeXML, ModeText} {
		cq, err := p.Compile(sql, mode)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}

		// Facade, streamed end to end.
		rows, err := p.QueryMode(mode, sql)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if n != 10 {
			t.Fatalf("mode %v: streamed %d rows, want 10", mode, n)
		}

		// Streamed cursor: the evaluator's own tuple counter stays O(10).
		cur := p.Engine.EvalStream(context.Background(), cq.Plan, nil, nil)
		for {
			if _, err := cur.Next(); err != nil {
				break
			}
		}
		cur.Close()
		if _, tuples := cur.Stats(); tuples > 25 { // text mode counts each row twice: build + tokenize
			t.Fatalf("mode %v: streamed FETCH FIRST evaluated %d tuples over a 100000-row source, want O(10)", mode, tuples)
		}

		// Materialized planned and naive paths take the same short circuit;
		// the evaluate stage's tuple detail pins them.
		for _, path := range []struct {
			name string
			run  func(tr *Trace) error
		}{
			{"planned", func(tr *Trace) error {
				_, err := p.Engine.EvalPlanWithTrace(context.Background(), cq.Plan, nil, tr)
				return err
			}},
			{"naive", func(tr *Trace) error {
				_, err := p.Engine.EvalNaiveWithTrace(context.Background(), cq.Res.Query, nil, tr)
				return err
			}},
		} {
			tr := obsv.NewTrace(sql)
			if err := path.run(tr); err != nil {
				t.Fatalf("mode %v: %s: %v", mode, path.name, err)
			}
			ev, ok := tr.Stage(obsv.StageEvaluate)
			if !ok {
				t.Fatalf("mode %v: %s: no evaluate stage recorded", mode, path.name)
			}
			if tuples := ev.DetailValue("tuples"); tuples > 25 { // text mode counts each row twice: build + tokenize
				t.Fatalf("mode %v: %s FETCH FIRST evaluated %d tuples over a 100000-row source, want O(10)", mode, path.name, tuples)
			}
		}
	}
}

// FuzzStreamDifferential extends the differential to arbitrary accepted
// SQL: whatever the statement, a doubly-successful run must produce
// byte-identical rows streamed and materialized.
func FuzzStreamDifferential(f *testing.F) {
	for _, s := range compiledCorpus() {
		f.Add(s)
	}
	app, _, engine := demo.Setup(demo.Sizes{Customers: 8, PaymentsPerCustomer: 2, Orders: 10, ItemsPerOrder: 2})
	p := New(app, engine)
	f.Fuzz(func(t *testing.T, sql string) {
		for _, mode := range []ResultMode{ModeXML, ModeText} {
			cq, err := p.Compile(sql, mode)
			if err != nil || cq.Res.ParamCount > 2 {
				return
			}
			if strings.Contains(cq.XQuery(), "fn:current-") {
				return // nondeterministic between the two evaluations
			}
			args := chaosArgs(cq.Res.ParamCount)
			srows, serr := p.QueryMode(mode, sql, args...)
			var got string
			if serr == nil {
				got, serr = marshalStreamed(srows)
			}
			mrows, merr := materializedOracle(p, mode, sql, args)
			if serr != nil || merr != nil {
				// Dynamic error timing is not part of the contract (XQuery
				// §2.3.4); value divergence on double success is the bug.
				return
			}
			if want := marshalRows(mrows); got != want {
				t.Fatalf("mode %v: %q: streamed diverged from materialized\ngot:  %s\nwant: %s",
					mode, sql, got, want)
			}
		}
	})
}

// TestStreamingMetricsSurface pins the streaming observability through the
// public facade: a streamed query must show up in aqualogic.Stats() as
// RowsStreamed, a TimeToFirstRow observation, and a nonzero in-flight
// high-water mark.
func TestStreamingMetricsSurface(t *testing.T) {
	p := Demo()
	before := Stats()
	rows, err := p.Query("SELECT CUSTOMERID FROM CUSTOMERS")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	after := Stats()
	if got := after.RowsStreamed - before.RowsStreamed; got < int64(n) {
		t.Fatalf("RowsStreamed advanced by %d, want >= %d", got, n)
	}
	if after.TimeToFirstRowCount <= before.TimeToFirstRowCount {
		t.Fatalf("TimeToFirstRow not observed: %d -> %d", before.TimeToFirstRowCount, after.TimeToFirstRowCount)
	}
	if after.PeakInFlightRows <= 0 {
		t.Fatal("PeakInFlightRows never recorded")
	}
}
