// Quickstart: build a data-service catalog, serve rows, translate a SQL
// query to XQuery, and run it end to end — the smallest complete tour of
// the library.
package main

import (
	"fmt"
	"log"

	aqualogic "repro"
)

func main() {
	// 1. Describe the application's metadata: one data service (BOOKS)
	//    imported from a relational source, exactly like the paper's
	//    Example 2 .ds file.
	app := &aqualogic.Application{Name: "BookstoreApp"}
	app.AddDSFile(&aqualogic.DSFile{
		Path: "Bookstore",
		Name: "BOOKS",
		Functions: []*aqualogic.Function{
			aqualogic.NewRelationalImport("Bookstore", "BOOKS", []aqualogic.Column{
				{Name: "BOOKID", Type: aqualogic.SQLInteger},
				{Name: "TITLE", Type: aqualogic.SQLVarchar, Precision: 64},
				{Name: "AUTHOR", Type: aqualogic.SQLVarchar, Nullable: true, Precision: 64},
				{Name: "PRICE", Type: aqualogic.SQLDecimal, Nullable: true, Precision: 8, Scale: 2},
			}),
		},
	})

	// 2. Serve the data: register the BOOKS() data service function with
	//    flat row elements (what a physical data service returns).
	engine := aqualogic.NewEngine()
	aqualogic.RegisterRows(engine, "ld:Bookstore/BOOKS", "BOOKS", []*aqualogic.Element{
		aqualogic.NewRow("BOOKS", "BOOKID", "1", "TITLE", "Data on the Web", "AUTHOR", "Abiteboul", "PRICE", "54.95"),
		aqualogic.NewRow("BOOKS", "BOOKID", "2", "TITLE", "XQuery from the Experts", "AUTHOR", "Katz", "PRICE", "49.50"),
		aqualogic.NewRow("BOOKS", "BOOKID", "3", "TITLE", "Anonymous Pamphlet", "AUTHOR", "", "PRICE", "5.00"),
		aqualogic.NewRow("BOOKS", "BOOKID", "4", "TITLE", "SQL-92 Complete", "AUTHOR", "Melton", "PRICE", ""),
	})

	p := aqualogic.New(app, engine)

	// 3. Translate a SQL query and inspect the generated XQuery.
	sql := "SELECT TITLE, PRICE FROM BOOKS WHERE PRICE < 50 ORDER BY PRICE DESC"
	xq, err := p.TranslateText(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- SQL:")
	fmt.Println("  ", sql)
	fmt.Println("-- generated XQuery:")
	fmt.Println(xq)

	// 4. Execute end to end (translation + XQuery evaluation + result
	//    decoding) with a parameter.
	rows, err := p.Query("SELECT TITLE, AUTHOR, PRICE FROM BOOKS WHERE BOOKID <> ? ORDER BY BOOKID", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- result:")
	fmt.Print(rows.Table())
}
