// Federation: the heterogeneous-integration story from the paper's
// introduction. Two very different "physical data services" — a
// relational-style table and a computed function standing in for a Web
// service — are exposed through one catalog and joined with plain SQL,
// which the driver translates into a single XQuery over both functions.
package main

import (
	"fmt"
	"log"

	aqualogic "repro"
)

func main() {
	app := &aqualogic.Application{Name: "FederationApp"}
	// A relational import: the employee roster.
	app.AddDSFile(&aqualogic.DSFile{
		Path: "HR",
		Name: "EMPLOYEES",
		Functions: []*aqualogic.Function{
			aqualogic.NewRelationalImport("HR", "EMPLOYEES", []aqualogic.Column{
				{Name: "EMPID", Type: aqualogic.SQLInteger},
				{Name: "NAME", Type: aqualogic.SQLVarchar, Precision: 40},
				{Name: "OFFICE", Type: aqualogic.SQLVarchar, Nullable: true, Precision: 8},
			}),
		},
	})
	// A "Web service" data service: office info served by code, not rows.
	app.AddDSFile(&aqualogic.DSFile{
		Path: "Facilities",
		Name: "OFFICES",
		Functions: []*aqualogic.Function{{
			Name:           "OFFICES",
			RowElement:     "OFFICES",
			Namespace:      "ld:Facilities/OFFICES",
			SchemaLocation: "ld:Facilities/schemas/OFFICES.xsd",
			Columns: []aqualogic.Column{
				{Name: "CODE", Type: aqualogic.SQLVarchar, Precision: 8},
				{Name: "CITY", Type: aqualogic.SQLVarchar, Precision: 24},
				{Name: "TIMEZONE", Type: aqualogic.SQLVarchar, Precision: 16},
			},
		}},
	})

	engine := aqualogic.NewEngine()
	aqualogic.RegisterRows(engine, "ld:HR/EMPLOYEES", "EMPLOYEES", []*aqualogic.Element{
		aqualogic.NewRow("EMPLOYEES", "EMPID", "1", "NAME", "Carey", "OFFICE", "SJC"),
		aqualogic.NewRow("EMPLOYEES", "EMPID", "2", "NAME", "Borkar", "OFFICE", "SJC"),
		aqualogic.NewRow("EMPLOYEES", "EMPID", "3", "NAME", "Jigyasu", "OFFICE", "PNQ"),
		aqualogic.NewRow("EMPLOYEES", "EMPID", "4", "NAME", "Remote Rita", "OFFICE", ""),
	})
	// The OFFICES "service" computes its result on every call — the
	// engine only sees a function returning flat XML, exactly as DSP
	// treats a Web service data source.
	offices := map[string][2]string{
		"SJC": {"San Jose", "US/Pacific"},
		"PNQ": {"Pune", "Asia/Kolkata"},
		"LHR": {"London", "Europe/London"},
	}
	engine.Register("ld:Facilities/OFFICES", "OFFICES",
		func(args []aqualogic.Sequence) (aqualogic.Sequence, error) {
			var out aqualogic.Sequence
			for _, code := range []string{"LHR", "PNQ", "SJC"} {
				info := offices[code]
				row := aqualogic.NewRow("OFFICES", "CODE", code, "CITY", info[0], "TIMEZONE", info[1])
				out = append(out, row)
			}
			return out, nil
		})

	p := aqualogic.New(app, engine)

	sql := `SELECT E.NAME, O.CITY, O.TIMEZONE
		FROM EMPLOYEES E LEFT OUTER JOIN OFFICES O ON E.OFFICE = O.CODE
		ORDER BY E.EMPID`
	fmt.Println("-- one SQL query spanning a table and a computed service:")
	fmt.Println(sql)

	xq, err := p.TranslateText(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- translates to a single XQuery over both data service functions:")
	fmt.Println(xq)

	rows, err := p.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- federated result (Remote Rita has no office → NULLs):")
	fmt.Print(rows.Table())

	// The reverse direction also works: which offices have no employees?
	rows, err = p.Query(`SELECT CODE, CITY FROM OFFICES
		WHERE CODE NOT IN (SELECT OFFICE FROM EMPLOYEES WHERE OFFICE IS NOT NULL)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- offices with no employees:")
	fmt.Print(rows.Table())

}
