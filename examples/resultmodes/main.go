// Resultmodes: demonstrates §4 of the paper — the two result-handling
// strategies of the JDBC driver. The same SQL runs twice: once returning
// the natural RECORDSET XML (materialized and parsed client-side), once
// wrapped in the fn:string-join query that yields delimiter-separated text.
// The example prints both payloads for a tiny result, then times both
// decoders on a larger one.
package main

import (
	"fmt"
	"log"
	"time"

	aqualogic "repro"
	"repro/internal/bench"
)

func main() {
	p := aqualogic.Demo()
	sql := "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID < 1003 ORDER BY CUSTOMERID"

	// What travels in XML mode.
	xmlRes, err := p.Translate(sql, aqualogic.ModeXML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== XML mode: the tail of the generated query ==")
	fmt.Println(lastLines(xmlRes.XQuery(), 12))

	// What travels in text mode: same query wrapped per §4.
	textRes, err := p.Translate(sql, aqualogic.ModeText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== text mode: the §4 wrapper around the same query ==")
	fmt.Println(firstLines(textRes.XQuery(), 6))
	fmt.Println("  …")

	rows, err := p.QueryMode(aqualogic.ModeText, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== decoded rows (identical in both modes) ==")
	fmt.Print(rows.Table())

	// The §4 measurement on a larger result: 5000 rows × 6 columns.
	payloads, err := bench.BuildPayloads(5000, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== payload sizes for 5000×6 ==\nXML:  %d bytes\ntext: %d bytes (%.2fx smaller)\n",
		len(payloads.XML), len(payloads.Text), float64(len(payloads.XML))/float64(len(payloads.Text)))

	timeDecode := func(name string, f func() error) time.Duration {
		const iters = 10
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				log.Fatal(err)
			}
		}
		d := time.Since(start) / iters
		fmt.Printf("%s decode: %s per result set\n", name, d.Round(time.Microsecond))
		return d
	}
	xmlTime := timeDecode("XML ", func() error { _, err := payloads.DecodeXML(); return err })
	textTime := timeDecode("text", func() error { _, err := payloads.DecodeText(); return err })
	fmt.Printf("text mode is %.1fx faster — the \"measurable improvement\" §4 reports\n",
		float64(xmlTime)/float64(textTime))
}

func firstLines(s string, n int) string {
	out, count := "", 0
	for _, line := range splitLines(s) {
		out += line + "\n"
		count++
		if count == n {
			break
		}
	}
	return out
}

func lastLines(s string, n int) string {
	lines := splitLines(s)
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	out := ""
	for _, line := range lines {
		out += line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
