// Logicalds: the paper's data-services layering (§2). Physical data
// services expose raw sources; *logical* data services are authored on top
// of them as queries, becoming first-class, queryable, composable services
// themselves. Here the logical layer is defined in SQL (each view is
// translated to XQuery once and registered as a new data service
// function), then reported on through plain SQL — including a view over a
// view.
package main

import (
	"fmt"
	"log"

	aqualogic "repro"
)

func main() {
	p := aqualogic.Demo() // physical layer: CUSTOMERS, PAYMENTS, PO_*

	// Logical layer 1: per-customer order statistics.
	if err := p.DefineView("Logical", "CUSTOMER_ORDERS", `
		SELECT C.CUSTOMERID AS ID, C.CUSTOMERNAME AS NAME, C.CITY,
		       COUNT(O.ORDERID) AS ORDERS, SUM(O.TOTAL) AS REVENUE
		FROM CUSTOMERS C INNER JOIN PO_CUSTOMERS O ON C.CUSTOMERID = O.CUSTOMERID
		GROUP BY C.CUSTOMERID, C.CUSTOMERNAME, C.CITY`); err != nil {
		log.Fatal(err)
	}

	// Logical layer 2: a view over the view — city-level rollup.
	if err := p.DefineView("Logical", "CITY_REVENUE", `
		SELECT CITY, COUNT(*) AS CUSTOMERS, SUM(REVENUE) AS REVENUE
		FROM CUSTOMER_ORDERS WHERE CITY IS NOT NULL GROUP BY CITY`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== top cities (a SQL query over a view over a view) ==")
	rows, err := p.Query(`SELECT CITY, CUSTOMERS, REVENUE FROM CITY_REVENUE
		ORDER BY REVENUE DESC FETCH FIRST 5 ROWS ONLY`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.Table())

	// The logical services join freely with the physical layer.
	fmt.Println("\n== customers whose revenue beats their city's average ==")
	rows, err = p.Query(`
		SELECT V.NAME, V.CITY, V.REVENUE
		FROM CUSTOMER_ORDERS V INNER JOIN CITY_REVENUE R ON V.CITY = R.CITY
		WHERE V.REVENUE > R.REVENUE / R.CUSTOMERS
		ORDER BY V.REVENUE DESC FETCH FIRST 5 ROWS ONLY`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.Table())

	// And the whole logical layer is visible to SQL tools via the driver.
	fmt.Println("\n== what the generated XQuery for the rollup looks like ==")
	xq, err := p.TranslateText("SELECT CITY, REVENUE FROM CITY_REVENUE WHERE REVENUE > 1000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xq)
}
