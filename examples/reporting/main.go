// Reporting: plays the role the paper's JDBC driver was built for — a
// SQL-based reporting tool (think Crystal Reports) pointed at an
// XML-world data services platform it knows nothing about.
//
// The "tool" first browses metadata the way JDBC's DatabaseMetaData is
// used (SHOW statements), then builds and runs ad-hoc report queries with
// joins, grouping and prepared statements, all through database/sql.
package main

import (
	"database/sql"
	"fmt"
	"log"
	"strings"

	aqualogic "repro"
	_ "repro/internal/driver"
)

func main() {
	aqualogic.Demo().RegisterDriver("reporting-demo")
	db, err := sql.Open("aqualogic", "reporting-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Step 1: discover what can be reported on.
	fmt.Println("== discovered tables ==")
	rows, err := db.Query("SHOW TABLES")
	if err != nil {
		log.Fatal(err)
	}
	var tables []string
	for rows.Next() {
		var cat, schema, name, typ string
		if err := rows.Scan(&cat, &schema, &name, &typ); err != nil {
			log.Fatal(err)
		}
		tables = append(tables, fmt.Sprintf("%s.%s", schema, name))
	}
	rows.Close()
	fmt.Println(strings.Join(tables, "\n"))

	fmt.Println("\n== CUSTOMERS columns ==")
	rows, err = db.Query("SHOW COLUMNS FROM CUSTOMERS")
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var name, typ, nullable string
		var pos int64
		if err := rows.Scan(&name, &typ, &nullable, &pos); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d. %-14s %-9s nullable=%s\n", pos, name, typ, nullable)
	}
	rows.Close()

	// Step 2: the classic report — revenue by city, customers ranked.
	fmt.Println("\n== revenue by city (orders joined to customers) ==")
	report, err := db.Query(`
		SELECT C.CITY, COUNT(*) AS ORDERS, SUM(O.TOTAL) AS REVENUE
		FROM CUSTOMERS C INNER JOIN PO_CUSTOMERS O ON C.CUSTOMERID = O.CUSTOMERID
		WHERE C.CITY IS NOT NULL
		GROUP BY C.CITY
		HAVING COUNT(*) > 1
		ORDER BY 3 DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-7s %s\n", "CITY", "ORDERS", "REVENUE")
	for report.Next() {
		var city string
		var orders int64
		var revenue float64
		if err := report.Scan(&city, &orders, &revenue); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-7d %10.2f\n", city, orders, revenue)
	}
	report.Close()

	// Step 3: a drill-down with a prepared statement, re-executed per
	// parameter (the translator runs once; only values change).
	fmt.Println("\n== customers without any orders (anti-join), first 5 ==")
	stmt, err := db.Prepare(`
		SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS C
		WHERE NOT EXISTS (SELECT 1 FROM PO_CUSTOMERS O WHERE O.CUSTOMERID = C.CUSTOMERID)
		AND CUSTOMERID < ?
		ORDER BY CUSTOMERID`)
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()
	quiet, err := stmt.Query(1050)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for quiet.Next() && n < 5 {
		var id int64
		var name string
		if err := quiet.Scan(&id, &name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d %s\n", id, name)
		n++
	}
	quiet.Close()
}
