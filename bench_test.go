package aqualogic

// Benchmarks regenerating the paper's quantitative content; see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results.
//
//	P1  BenchmarkResultHandling — §4: XML materialization vs text decoding
//	P2  BenchmarkTranslate      — §3.2(ii): translator latency per class
//	P3  BenchmarkMetadataCache  — §3.5: metadata fetch-and-cache
//	    BenchmarkEndToEnd       — full driver path per mode
//	    BenchmarkJoinShapes     — ablation: generated join patterns
//	    BenchmarkEngine         — the substrate's own evaluation cost
//	P6  BenchmarkEvalJoinPlan   — evaluator planner: nested loop vs hash join
//	P11 BenchmarkParallelScan   — morsel-parallel execution through the facade

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/translator"
	"repro/internal/xquery"
)

// BenchmarkResultHandling is the headline §4 experiment: the client-side
// cost of turning a query result into a JDBC-style result set, per
// result-handling mode, across a rows × columns sweep.
func BenchmarkResultHandling(b *testing.B) {
	for _, cols := range []int{2, 4, 8} {
		for _, rows := range []int{100, 1000, 10000} {
			p, err := bench.BuildPayloads(rows, cols)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("XML/rows=%d/cols=%d", rows, cols), func(b *testing.B) {
				b.SetBytes(int64(len(p.XML)))
				for i := 0; i < b.N; i++ {
					if _, err := p.DecodeXML(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("Text/rows=%d/cols=%d", rows, cols), func(b *testing.B) {
				b.SetBytes(int64(len(p.Text)))
				for i := 0; i < b.N; i++ {
					if _, err := p.DecodeText(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTranslate measures SQL→XQuery translation per query class with
// warm metadata (the "intensive, ad hoc query environment" of §3.2).
func BenchmarkTranslate(b *testing.B) {
	tr, _ := bench.NewDemoTranslator(0, true)
	for _, q := range bench.TranslationWorkload {
		// Warm the cache and validate the query.
		if _, err := tr.Translate(q.SQL); err != nil {
			b.Fatalf("%s: %v", q.Name, err)
		}
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tr.Translate(q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetadataCache contrasts cold (every lookup pays the simulated
// remote round trip) and warm translation.
func BenchmarkMetadataCache(b *testing.B) {
	const latency = 200 * time.Microsecond
	sql := "SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENT FROM CUSTOMERS INNER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID"

	b.Run("cold", func(b *testing.B) {
		tr, cache := bench.NewDemoTranslator(latency, true)
		for i := 0; i < b.N; i++ {
			cache.Invalidate()
			if _, err := tr.Translate(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		tr, _ := bench.NewDemoTranslator(latency, true)
		if _, err := tr.Translate(sql); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Translate(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndToEnd measures the full pipeline — translate, execute,
// decode — per result mode at two data scales.
func BenchmarkEndToEnd(b *testing.B) {
	for _, customers := range []int{50, 500} {
		app, engine := bench.DemoEngine(customers)
		p := New(app, engine)
		sql := "SELECT CUSTOMERID, CUSTOMERNAME, CITY FROM CUSTOMERS WHERE CUSTOMERID >= 1000 ORDER BY CUSTOMERNAME"
		for _, mode := range []struct {
			name string
			m    ResultMode
		}{{"Text", ModeText}, {"XML", ModeXML}} {
			b.Run(fmt.Sprintf("%s/customers=%d", mode.name, customers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows, err := p.QueryMode(mode.m, sql)
					if err != nil {
						b.Fatal(err)
					}
					if rows.Len() != customers {
						b.Fatalf("rows = %d", rows.Len())
					}
				}
			})
		}
	}
}

// BenchmarkJoinShapes is the join-pattern ablation DESIGN.md calls out:
// the flattened double-for inner join vs the let+filter+if-empty outer
// join, executed end to end.
func BenchmarkJoinShapes(b *testing.B) {
	app, engine := bench.DemoEngine(200)
	p := New(app, engine)
	queries := map[string]string{
		"inner": "SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENT FROM CUSTOMERS INNER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID",
		"outer": "SELECT CUSTOMERS.CUSTOMERNAME, PAYMENTS.PAYMENT FROM CUSTOMERS LEFT OUTER JOIN PAYMENTS ON CUSTOMERS.CUSTOMERID = PAYMENTS.CUSTID",
	}
	for name, sql := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine isolates the substrate: evaluating an already-translated
// query, without translation or decoding.
func BenchmarkEngine(b *testing.B) {
	app, engine := bench.DemoEngine(200)
	tr := translator.New(app)
	res, err := tr.Translate("SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Eval(res.Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXQueryCompile measures the server-side compile step at the
// driver/server boundary: parsing + statically checking the generated
// XQuery text the driver ships.
func BenchmarkXQueryCompile(b *testing.B) {
	tr, _ := bench.NewDemoTranslator(0, true)
	app, engine := bench.DemoEngine(50)
	_ = app
	for _, q := range bench.TranslationWorkload {
		res, err := tr.Translate(q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		text := res.XQuery()
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parsed, err := xquery.Parse(text)
				if err != nil {
					b.Fatal(err)
				}
				if err := engine.Check(parsed, externalNames(res.ParamCount)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalJoinPlan is the P6 experiment at benchmark scale: one
// translated equi-join executed by the naive nested-loop pipeline and by
// the planner's hash join over identical synthetic tables.
func BenchmarkEvalJoinPlan(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run(fmt.Sprintf("size=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunEvalJoin([]int{n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func externalNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("p%d", i+1)
	}
	return out
}

// BenchmarkStreamDelivery is the P9 experiment: time to first row and
// total latency of the pull-cursor path against materialize-then-decode,
// per result cardinality.
func BenchmarkStreamDelivery(b *testing.B) {
	for _, rows := range []int{100, 10000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunStreamSweep([]int{rows}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelScan is the P11 smoke axis: the demo join through the
// full facade at several degrees of parallelism, with morsels sized so
// even the 50-row demo scans fan out. CI's bench-smoke runs it once per
// worker count to prove the parallel path stays executable; the real
// speedup measurement is the P11 sweep (bench.RunEvalParallel).
func BenchmarkParallelScan(b *testing.B) {
	const sql = "SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID"
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := Demo()
			p.ConfigureExec(ExecConfig{Workers: workers, MorselSize: 8, MinParallelItems: 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := p.Query(sql)
				if err != nil {
					b.Fatal(err)
				}
				if err := rows.Materialize(); err != nil {
					b.Fatal(err)
				}
				rows.Close()
			}
		})
	}
}
