// Differential oracle for the compiled-query boundary: every statement in
// the EXPLAIN golden corpus and the translator fuzz seeds, in both result
// modes, must produce byte-identical sequences through the compiled path
// (translate → check+plan the AST, no serialization) and the legacy
// textual path (translate → serialize → re-parse → check+plan). The
// textual path is the sql2xq/xqrun process boundary the paper's
// architecture forces; keeping it as the oracle is what licenses the
// in-process pipeline to skip it.
package aqualogic

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// compiledCorpus mirrors the planner differential corpus
// (internal/xqeval/differential_test.go): the EXPLAIN golden SQL plus the
// translator fuzz seeds, deduplicated.
func compiledCorpus() []string {
	raw := []string{
		// EXPLAIN golden corpus (internal/driver/explain_golden_test.go).
		"SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS",
		"SELECT * FROM CUSTOMERS",
		"SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID",
		"SELECT A.CUSTOMERNAME, B.PAYMENT FROM CUSTOMERS A LEFT OUTER JOIN PAYMENTS B ON A.CUSTOMERID = B.CUSTID",
		"SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1",
		"SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS",
		"SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS WHERE PAYMENT > 100)",
		"SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY DESC",
		"SELECT UPPER(CUSTOMERNAME), LENGTH(CITY) FROM CUSTOMERS WHERE CITY IS NOT NULL",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ? AND CITY = ?",
		// Translator fuzz seeds (internal/translator/fuzz_test.go).
		"SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS)",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ?",
		"SELECT CAST(CUSTOMERID AS VARCHAR(10)) FROM CUSTOMERS ORDER BY 1",
		"SELECT COUNT(DISTINCT CITY), MIN(SIGNUPDATE) FROM CUSTOMERS",
		"SELECT EXTRACT(YEAR FROM PAYDATE), SUM(PAYMENT) FROM PAYMENTS GROUP BY EXTRACT(YEAR FROM PAYDATE)",
		"SELECT * FROM PO_CUSTOMERS WHERE STATUS = 'OPEN' AND TOTAL BETWEEN 10 AND 500",
		"SELECT CUSTOMERID FROM CUSTOMERS EXCEPT SELECT CUSTID FROM PAYMENTS",
	}
	seen := map[string]bool{}
	var out []string
	for _, s := range raw {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// compiledBindings builds external variable bindings $p1…$pN plus the
// parallel name list the textual path's static check needs. Numeric
// parameters get an in-range customer id, the rest a demo city name.
func compiledBindings(res *translator.Result) (map[string]xdm.Sequence, []string) {
	if res.ParamCount == 0 {
		return nil, nil
	}
	ext := make(map[string]xdm.Sequence, res.ParamCount)
	names := make([]string, 0, res.ParamCount)
	for i := 0; i < res.ParamCount; i++ {
		var v xdm.Atomic
		switch res.ParamTypes[i] {
		case catalog.SQLInteger, catalog.SQLSmallint, catalog.SQLDecimal, catalog.SQLDouble:
			v = xdm.Integer(1005)
		default:
			v = xdm.String("Springfield")
		}
		name := "p" + strconv.Itoa(i+1)
		ext[name] = xdm.SequenceOf(v)
		names = append(names, name)
	}
	return ext, names
}

// evalTextual runs the legacy boundary on a compiled artifact: serialize
// the translated AST, re-parse the text, then check, plan, and evaluate
// the re-parsed query. A serialization that fails to re-parse is a hard
// failure — the textual path must stay a working oracle.
func evalTextual(t *testing.T, engine *Engine, cq *CompiledQuery, ext map[string]xdm.Sequence, names []string) (xdm.Sequence, error) {
	t.Helper()
	text := cq.XQuery()
	parsed, err := xqeval.Compile(text)
	if err != nil {
		t.Fatalf("%q: serialized XQuery failed to re-parse: %v\n%s", cq.SQL, err, text)
	}
	plan, err := engine.CompileAST(parsed, names)
	if err != nil {
		t.Fatalf("%q: re-parsed XQuery failed static check: %v\n%s", cq.SQL, err, text)
	}
	return engine.EvalPlanWithTrace(context.Background(), plan, ext, nil)
}

// TestCompiledMatchesTextual is the compiled-query differential: both
// paths must agree byte-for-byte over the whole corpus in both result
// modes, and a second sweep must be served entirely from the compile
// cache without changing the answers.
func TestCompiledMatchesTextual(t *testing.T) {
	p := Demo()
	corpus := compiledCorpus()
	checked := 0

	run := func(pass string, wantHit bool) {
		for _, mode := range []ResultMode{ModeXML, ModeText} {
			for _, sql := range corpus {
				before := p.CompileStats()
				cq, err := p.Compile(sql, mode)
				if err != nil {
					t.Fatalf("%s: mode %v: %q must compile: %v", pass, mode, sql, err)
				}
				after := p.CompileStats()
				if wantHit && after.Hits != before.Hits+1 {
					t.Fatalf("%s: mode %v: %q: expected a cache hit, stats %+v -> %+v", pass, mode, sql, before, after)
				}
				ext, names := compiledBindings(cq.Res)
				compiled, cerr := p.Engine.EvalPlanWithTrace(context.Background(), cq.Plan, ext, nil)
				textual, terr := evalTextual(t, p.Engine, cq, ext, names)
				if (cerr == nil) != (terr == nil) {
					t.Fatalf("%s: mode %v: %q: error divergence\ncompiled: %v\ntextual:  %v", pass, mode, sql, cerr, terr)
				}
				if cerr != nil {
					t.Fatalf("%s: mode %v: %q must evaluate: %v", pass, mode, sql, cerr)
				}
				if got, want := xdm.MarshalSequence(compiled), xdm.MarshalSequence(textual); got != want {
					t.Fatalf("%s: mode %v: %q: result divergence\ncompiled: %s\ntextual:  %s", pass, mode, sql, got, want)
				}
				checked++
			}
		}
	}

	run("cold", false)
	run("cached", true)

	if checked < 76 { // 19 distinct statements × 2 modes × 2 passes
		t.Fatalf("corpus shrank: only %d checks ran", checked)
	}
	if s := p.CompileStats(); s.Misses != int64(len(corpus)*2) {
		t.Fatalf("expected one miss per (statement, mode), got stats %+v", s)
	}
}

// FuzzCompiledDifferential extends translator fuzzing across the
// serialize→reparse boundary: any SQL the translator accepts is compiled
// once as an AST and once through its own serialized text, and any
// re-parse failure or value divergence fails.
func FuzzCompiledDifferential(f *testing.F) {
	for _, s := range compiledCorpus() {
		f.Add(s)
	}
	// Small dataset: fuzz inputs can join a table with itself several
	// times, and each input is evaluated twice.
	app, _, engine := demo.Setup(demo.Sizes{Customers: 8, PaymentsPerCustomer: 2, Orders: 10, ItemsPerOrder: 2})
	p := New(app, engine)
	f.Fuzz(func(t *testing.T, sql string) {
		cq, err := p.Compile(sql, ModeXML)
		if err != nil {
			return
		}
		if strings.Contains(cq.XQuery(), "fn:current-") {
			return // nondeterministic between the two evaluations
		}
		ext, names := compiledBindings(cq.Res)
		compiled, cerr := p.Engine.EvalPlanWithTrace(context.Background(), cq.Plan, ext, nil)
		textual, terr := evalTextual(t, p.Engine, cq, ext, names)
		if cerr != nil || terr != nil {
			// Both paths run the same planner, but dynamic error timing is
			// not part of the contract (XQuery §2.3.4); value divergence on
			// a doubly-successful query is what this fuzzer hunts.
			return
		}
		if got, want := xdm.MarshalSequence(compiled), xdm.MarshalSequence(textual); got != want {
			t.Fatalf("%q: result divergence\ncompiled: %s\ntextual:  %s", sql, got, want)
		}
	})
}
