// Chaos soak for the resilience net: the full stack — translator, driver
// entry points, planner, evaluator — runs the EXPLAIN golden corpus and
// translator fuzz seeds through an armed fault-injection net at several
// fault rates, concurrently, under -race. The contract being proven:
//
//   - no injected panic ever escapes the defenses,
//   - every failure surfaces as a typed error (never silent corruption),
//   - every retried success is byte-identical to the fault-free run —
//     partial (truncated) row sequences are never mistaken for results.
package aqualogic

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/aqerr"
	"repro/internal/demo"
	"repro/internal/faultnet"
	"repro/internal/remoteclient"
	"repro/internal/server"
)

// chaosCorpus mirrors the differential corpus (EXPLAIN golden SQL plus
// translator fuzz seeds).
func chaosCorpus() []string {
	return []string{
		"SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS",
		"SELECT * FROM CUSTOMERS",
		"SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID",
		"SELECT A.CUSTOMERNAME, B.PAYMENT FROM CUSTOMERS A LEFT OUTER JOIN PAYMENTS B ON A.CUSTOMERID = B.CUSTID",
		"SELECT CITY, COUNT(*) FROM CUSTOMERS GROUP BY CITY HAVING COUNT(*) > 1",
		"SELECT CUSTOMERID FROM CUSTOMERS UNION SELECT CUSTID FROM PAYMENTS",
		"SELECT INFO.ID FROM (SELECT CUSTOMERID ID FROM CUSTOMERS) AS INFO WHERE INFO.ID > 10",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS WHERE PAYMENT > 100)",
		"SELECT DISTINCT CITY FROM CUSTOMERS ORDER BY CITY DESC",
		"SELECT UPPER(CUSTOMERNAME), LENGTH(CITY) FROM CUSTOMERS WHERE CITY IS NOT NULL",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID = ? AND CITY = ?",
		"SELECT CAST(CUSTOMERID AS VARCHAR(10)) FROM CUSTOMERS ORDER BY 1",
		"SELECT COUNT(DISTINCT CITY), MIN(SIGNUPDATE) FROM CUSTOMERS",
		"SELECT EXTRACT(YEAR FROM PAYDATE), SUM(PAYMENT) FROM PAYMENTS GROUP BY EXTRACT(YEAR FROM PAYDATE)",
		"SELECT * FROM PO_CUSTOMERS WHERE STATUS = 'OPEN' AND TOTAL BETWEEN 10 AND 500",
		"SELECT CUSTOMERID FROM CUSTOMERS EXCEPT SELECT CUSTID FROM PAYMENTS",
	}
}

// chaosArgs supplies parameter values for a statement's `?` markers.
func chaosArgs(paramCount int) []any {
	switch paramCount {
	case 1:
		return []any{1005}
	case 2:
		return []any{1005, "Springfield"}
	default:
		return nil
	}
}

// drain materializes a streaming result set — where mid-stream faults
// (sources failing with rows already delivered) surface — then renders it.
func drain(r *Rows) (string, error) {
	if err := r.Materialize(); err != nil {
		return "", err
	}
	return marshalRows(r), nil
}

// marshalRows renders a result set canonically for byte comparison.
func marshalRows(r *Rows) string {
	var b strings.Builder
	for _, c := range r.Columns() {
		fmt.Fprintf(&b, "[%s]", c.Label)
	}
	b.WriteByte('\n')
	r.Reset()
	for r.Next() {
		for i := range r.Columns() {
			s, ok, err := r.String(i)
			switch {
			case err != nil:
				fmt.Fprintf(&b, "|!%v", err)
			case !ok:
				b.WriteString("|NULL")
			default:
				fmt.Fprintf(&b, "|%s", s)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// chaosPlatform builds a defended platform over the chaos layer.
func chaosPlatform(sizes demo.Sizes, fcfg FaultConfig) (*Platform, *FaultInjector) {
	app, _, engine := demo.Setup(sizes)
	p := New(app, engine)
	inj := p.EnableFaults(fcfg)
	p.EnableResilience(ResilienceConfig{
		MaxRetries:       6,
		BaseBackoff:      200 * time.Microsecond,
		BreakerThreshold: 50, // soak wants retried successes, not fast-fails
		BreakerCooldown:  5 * time.Millisecond,
		StaleTTL:         time.Hour,
		QueryTimeout:     30 * time.Second,
	})
	return p, inj
}

// typedFailure reports whether an error is an acceptable chaos outcome:
// a classified fault or a typed QueryError. Anything else (raw string
// errors, nil-dereference panics turned errors) is a defense gap.
func typedFailure(err error) bool {
	var qe *aqerr.QueryError
	return aqerr.Fault(err) || errors.As(err, &qe)
}

func TestChaosSoak(t *testing.T) {
	sizes := demo.Sizes{Customers: 12, PaymentsPerCustomer: 2, Orders: 12, ItemsPerOrder: 2}

	// Fault-free baseline for byte-identity.
	app, _, engine := demo.Setup(sizes)
	base := New(app, engine)
	want := make(map[string]string, len(chaosCorpus()))
	for _, sql := range chaosCorpus() {
		rows, err := base.Query(sql, chaosArgs(strings.Count(sql, "?"))...)
		if err == nil {
			want[sql], err = drain(rows)
		}
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
	}

	iters := 3
	if testing.Short() {
		iters = 1
	}
	for _, rate := range []float64{0, 0.05, 0.2} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			p, inj := chaosPlatform(sizes, FaultConfig{
				Seed:         2026,
				Rate:         rate,
				Latency:      200 * time.Microsecond,
				StallTimeout: 5 * time.Millisecond,
			})
			var successes, failures int64
			var mu sync.Mutex
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						for _, sql := range chaosCorpus() {
							rows, err := p.Query(sql, chaosArgs(strings.Count(sql, "?"))...)
							var got string
							if err == nil {
								// Faults can also strike with rows already in
								// flight; they must surface typed from the
								// cursor, never as a silent short read.
								got, err = drain(rows)
							}
							if err != nil {
								if !typedFailure(err) {
									t.Errorf("untyped chaos failure for %q: %v", sql, err)
								}
								mu.Lock()
								failures++
								mu.Unlock()
								continue
							}
							if got != want[sql] {
								t.Errorf("rate %v: %q diverged from fault-free run\ngot:  %s\nwant: %s",
									rate, sql, got, want[sql])
							}
							mu.Lock()
							successes++
							mu.Unlock()
						}
					}
				}(g)
			}
			wg.Wait()

			total := successes + failures
			if rate == 0 {
				if failures != 0 {
					t.Fatalf("rate 0 had %d failures", failures)
				}
				for _, r := range inj.Report() {
					if r.Total() != 0 {
						t.Fatalf("rate 0 injected faults at %s: %+v", r.Name, r)
					}
				}
			} else {
				if successes == 0 {
					t.Fatalf("no retried successes at rate %v (%d runs)", rate, total)
				}
				var injected int64
				for _, r := range inj.Report() {
					injected += r.Total()
				}
				if injected == 0 {
					t.Fatalf("rate %v injected nothing over %d runs", rate, total)
				}
				t.Logf("rate %v: %d/%d queries succeeded, %d faults injected across %d sites",
					rate, successes, total, injected, len(inj.Report()))
			}
		})
	}
}

// TestChaosHardDown proves the degradation ladder end to end: with the
// backend fully down (rate 1, transient-only), previously cached metadata
// keeps translation alive — served stale and flagged — and execution
// fails fast through the open breakers with typed unavailable errors,
// well inside the configured timeout.
func TestChaosHardDown(t *testing.T) {
	sizes := demo.Sizes{Customers: 8, PaymentsPerCustomer: 2, Orders: 8, ItemsPerOrder: 2}
	app, _, engine := demo.Setup(sizes)
	p := New(app, engine)
	// Healthy at first (rate 0); transient-only so the outage models a
	// backend that stops answering, not one that corrupts.
	inj := p.EnableFaults(FaultConfig{Seed: 7, Rate: 0, Kinds: []FaultKind{FaultTransient}})
	p.EnableResilience(ResilienceConfig{
		MaxRetries:       1,
		BaseBackoff:      100 * time.Microsecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		StaleTTL:         time.Nanosecond, // every lookup refreshes; outage → stale
		QueryTimeout:     2 * time.Second,
	})

	const sql = "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS"
	if _, err := p.Query(sql); err != nil {
		t.Fatalf("healthy query: %v", err)
	}

	inj.SetRate(1) // the backend goes hard-down

	// Metadata survives on stale entries (flagged), so translation works.
	if _, err := p.Translate(sql, ModeText); err != nil {
		t.Fatalf("hard-down translate should serve stale metadata: %v", err)
	}
	if s := p.MetadataStats(); !s.Degraded || s.StaleServes == 0 {
		t.Fatalf("metadata stats = %+v, want degraded + stale serves", s)
	}

	// Execution trips the breaker, then fails fast with typed errors.
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for i := 0; i < 10 && time.Now().Before(deadline); i++ {
		_, lastErr = p.Query(sql)
		if lastErr == nil {
			t.Fatal("hard-down query succeeded")
		}
		if !typedFailure(lastErr) {
			t.Fatalf("untyped hard-down error: %v", lastErr)
		}
	}
	start := time.Now()
	_, err := p.Query(sql)
	if err == nil {
		t.Fatal("open breaker should fail")
	}
	var qe *aqerr.QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("fast-fail error untyped: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fast-fail took %v, want well under the 2s timeout", elapsed)
	}
}

// FuzzFaultedEval drives arbitrary accepted SQL through the defended
// chaos stack: whatever the seed and statement, no panic may escape, no
// failure may be untyped, and any success must match the fault-free run.
func FuzzFaultedEval(f *testing.F) {
	for i, sql := range chaosCorpus() {
		f.Add(sql, uint64(i*7+1))
	}
	sizes := demo.Sizes{Customers: 6, PaymentsPerCustomer: 2, Orders: 6, ItemsPerOrder: 2}
	app, _, engine := demo.Setup(sizes)
	base := New(app, engine)
	f.Fuzz(func(t *testing.T, sql string, seed uint64) {
		res, err := base.Translate(sql, ModeText)
		if err != nil || res.ParamCount > 2 {
			return
		}
		if strings.Contains(res.XQuery(), "fn:current-") {
			return // nondeterministic between the two runs
		}
		args := chaosArgs(res.ParamCount)
		baseRows, baseErr := base.Query(sql, args...)
		var want string
		if baseErr == nil {
			want, baseErr = drain(baseRows)
		}
		p, _ := chaosPlatform(sizes, FaultConfig{
			Seed: seed, Rate: 0.3,
			Latency:      50 * time.Microsecond,
			StallTimeout: time.Millisecond,
		})
		rows, err := p.Query(sql, args...)
		var got string
		if err == nil {
			got, err = drain(rows)
		}
		if err != nil {
			if !typedFailure(err) && baseErr == nil {
				t.Fatalf("untyped chaos failure for %q: %v", sql, err)
			}
			return
		}
		if baseErr != nil {
			return // planner error-timing latitude; value divergence is the bug
		}
		if got != want {
			t.Fatalf("%q under faults diverged\ngot:  %s\nwant: %s", sql, got, want)
		}
	})
}

// TestChaosMidStreamTruncation aims truncation faults — sources that
// return a prefix of the real rows together with an error — at live
// streams consumed row by row, with no resilience layer to absorb them.
// The contract: a run either delivers the complete, byte-identical result
// with a nil Err, or terminates in a typed error; a nil-Err run that
// silently delivered a prefix is the corruption this test exists to catch.
func TestChaosMidStreamTruncation(t *testing.T) {
	sizes := demo.Sizes{Customers: 40, PaymentsPerCustomer: 3, Orders: 12, ItemsPerOrder: 2}
	// Statements whose evaluation calls data sources per tuple, so a
	// truncation can strike with rows already handed to the consumer.
	stmts := []string{
		"SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS",
		"SELECT C.CUSTOMERNAME, P.PAYMENT FROM CUSTOMERS C, PAYMENTS P WHERE C.CUSTOMERID = P.CUSTID",
		"SELECT CUSTOMERNAME FROM CUSTOMERS WHERE CUSTOMERID IN (SELECT CUSTID FROM PAYMENTS WHERE PAYMENT > 100)",
	}

	app, _, engine := demo.Setup(sizes)
	base := New(app, engine)
	want := make(map[string]string, len(stmts))
	for _, sql := range stmts {
		rows, err := base.Query(sql)
		if err == nil {
			want[sql], err = drain(rows)
		}
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
	}

	fapp, _, fengine := demo.Setup(sizes)
	p := New(fapp, fengine)
	inj := p.EnableFaults(FaultConfig{
		Seed:  41,
		Rate:  0.15,
		Kinds: []FaultKind{FaultTruncate}, // truncation only: every fault is a short read
	})

	var midStream, complete int
	for iter := 0; iter < 40; iter++ {
		for _, sql := range stmts {
			rows, err := p.Query(sql)
			if err != nil {
				if !typedFailure(err) {
					t.Fatalf("untyped open-time failure for %q: %v", sql, err)
				}
				continue
			}
			// Live row-by-row consumption: the genuine streaming path, where
			// a silent short read would otherwise be indistinguishable from
			// a small result.
			got, err := marshalStreamed(rows)
			if err != nil {
				if !typedFailure(err) {
					t.Fatalf("untyped mid-stream failure for %q: %v", sql, err)
				}
				midStream++
				continue
			}
			if got != want[sql] {
				t.Fatalf("truncated %q passed off a short read as success\ngot:  %s\nwant: %s",
					sql, got, want[sql])
			}
			complete++
		}
	}
	if midStream == 0 {
		t.Fatalf("no truncation surfaced mid-stream (%d complete runs) — the fault never hit a live cursor", complete)
	}
	var injected int64
	for _, r := range inj.Report() {
		injected += r.Total()
	}
	if injected == 0 {
		t.Fatal("injector reported no truncation faults")
	}
	t.Logf("%d complete runs, %d typed mid-stream truncations, %d faults injected", complete, midStream, injected)
}

// TestServeChaos points the chaos layer at the wire surface itself: every
// srv/* request site (handshake, prepare, execute, fetch, cursor close,
// metadata) misbehaves on a deterministic schedule — transient and
// permanent errors, latency spikes, short stalls, fetch truncation, and
// handler panics. The contract mirrors the in-process soak: no injected
// panic escapes the handler boundary, every failure the client sees is a
// typed error, and any run that reports success is byte-identical to the
// fault-free result (a truncated fetch always carries its error).
func TestServeChaos(t *testing.T) {
	p := Demo()

	// Fault-free baselines straight from the platform: srv/* faults never
	// touch the in-process path.
	baseline := make(map[string]string)
	for _, sql := range chaosCorpus() {
		rows, err := p.Query(sql, chaosArgs(strings.Count(sql, "?"))...)
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
		if baseline[sql], err = drain(rows); err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
	}

	inj := faultnet.New(faultnet.Config{
		Seed:         99,
		Rate:         0.25,
		Latency:      500 * time.Microsecond,
		StallTimeout: 5 * time.Millisecond, // stalls resolve fast in-test
	})
	srv := server.New(p, server.Config{
		FetchRows:          2, // many fetches per statement = many fault rolls
		SessionIdleTimeout: time.Minute,
		Faults:             inj,
	})
	defer srv.Close()
	h := srv.Handler()

	var attempts, failures, truncations int
	for round := 0; round < 4; round++ {
		c, err := remoteclient.Loopback(h)
		if err != nil {
			// Handshake faulted: must be typed, then try again next round.
			if !typedFailure(err) {
				t.Fatalf("handshake failed untyped: %v", err)
			}
			failures++
			continue
		}
		for _, sql := range chaosCorpus() {
			attempts++
			rows, err := c.QueryStreamMode(context.Background(), ModeText, sql,
				chaosArgs(strings.Count(sql, "?"))...)
			var got string
			if err == nil {
				got, err = marshalStreamed(rows)
				rows.Close()
			}
			if err != nil {
				failures++
				if !typedFailure(err) {
					t.Fatalf("%q: untyped failure through the wire: %v", sql, err)
				}
				if strings.Contains(err.Error(), "truncate") {
					truncations++
				}
				continue
			}
			if got != baseline[sql] {
				t.Fatalf("%q: served success diverged from fault-free baseline\ngot:  %s\nwant: %s",
					sql, got, baseline[sql])
			}
		}
		_ = c.Close() // may itself be faulted; either way the server reaps
	}
	if failures == 0 {
		t.Fatalf("chaos injected nothing across %d attempts — schedule dead", attempts)
	}
	t.Logf("serve chaos: %d attempts, %d typed failures (%d truncations)", attempts, failures, truncations)

	// Panic containment is part of the schedule: recovered handler panics
	// must be counted, and the server must still be fully alive.
	inj.SetRate(0)
	c, err := remoteclient.Loopback(h)
	if err != nil {
		t.Fatalf("post-chaos handshake: %v", err)
	}
	sql := "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS"
	rows, err := c.QueryStreamMode(context.Background(), ModeText, sql)
	if err != nil {
		t.Fatalf("post-chaos query: %v", err)
	}
	if got, err := marshalStreamed(rows); err != nil || got != baseline[sql] {
		t.Fatalf("post-chaos rows diverged (err=%v)\ngot:  %s\nwant: %s", err, got, baseline[sql])
	}
	rows.Close()
	if st := srv.Stats(); st.QueriesInFlight != 0 || st.CursorsOpen != 0 {
		t.Fatalf("chaos left server state behind: %+v", st)
	}
}

// TestChaosParallelExecution re-runs the fault soak with morsel-parallel
// execution armed: ds/* faults now strike inside worker goroutines, where
// the pool must cancel the siblings and surface exactly one typed error —
// and every retried success must still be byte-identical to the
// fault-free (parallel) run. Runs under -race via the chaos CI target.
func TestChaosParallelExecution(t *testing.T) {
	sizes := demo.Sizes{Customers: 12, PaymentsPerCustomer: 2, Orders: 12, ItemsPerOrder: 2}
	parCfg := ExecConfig{Workers: 8, MorselSize: 4, MinParallelItems: 2}

	// Fault-free parallel baseline for byte-identity.
	app, _, engine := demo.Setup(sizes)
	base := New(app, engine)
	base.ConfigureExec(parCfg)
	want := make(map[string]string, len(chaosCorpus()))
	for _, sql := range chaosCorpus() {
		rows, err := base.Query(sql, chaosArgs(strings.Count(sql, "?"))...)
		if err == nil {
			want[sql], err = drain(rows)
		}
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
	}

	p, inj := chaosPlatform(sizes, FaultConfig{
		Seed:         2027,
		Rate:         0.2,
		Latency:      200 * time.Microsecond,
		StallTimeout: 5 * time.Millisecond,
	})
	p.ConfigureExec(parCfg)

	iters := 3
	if testing.Short() {
		iters = 1
	}
	var successes, failures int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, sql := range chaosCorpus() {
					rows, err := p.Query(sql, chaosArgs(strings.Count(sql, "?"))...)
					var got string
					if err == nil {
						got, err = drain(rows)
					}
					if err != nil {
						if !typedFailure(err) {
							t.Errorf("untyped chaos failure under parallel execution for %q: %v", sql, err)
						}
						mu.Lock()
						failures++
						mu.Unlock()
						continue
					}
					if got != want[sql] {
						t.Errorf("parallel chaos: %q diverged from fault-free run\ngot:  %s\nwant: %s", sql, got, want[sql])
					}
					mu.Lock()
					successes++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if successes == 0 {
		t.Fatalf("no retried successes under parallel chaos (%d failures)", failures)
	}
	var injected int64
	for _, r := range inj.Report() {
		injected += r.Total()
	}
	if injected == 0 {
		t.Fatalf("parallel chaos injected nothing over %d runs", successes+failures)
	}
	t.Logf("parallel chaos: %d successes, %d typed failures, %d faults injected", successes, failures, injected)
}
