// Differential soak for the network-level chaos proxy: the full remote
// stack — resilient client, real HTTP, real TCP — speaks to a real
// server through a netchaos proxy injecting resets, slow links, black
// holes, and mid-response truncation underneath HTTP. The contract under
// that abuse is absolute: every query either delivers rows
// byte-identical to the in-process oracle, or fails with a typed error —
// never a silently short, doubled, or reordered result. Runs under -race
// via the soak CI target.
package aqualogic

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/netchaos"
	"repro/internal/remoteclient"
	"repro/internal/server"
)

func TestNetChaosDifferential(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := Demo()

	// Fault-free oracle: every (statement, mode) result, rendered
	// canonically.
	type key struct {
		sql  string
		mode ResultMode
	}
	modes := []ResultMode{ModeText, ModeXML}
	oracle := make(map[key]string)
	for _, sql := range chaosCorpus() {
		for _, mode := range modes {
			rows, err := p.QueryMode(mode, sql, chaosArgs(strings.Count(sql, "?"))...)
			if err != nil {
				t.Fatalf("oracle %q: %v", sql, err)
			}
			if oracle[key{sql, mode}], err = drain(rows); err != nil {
				t.Fatalf("oracle %q: %v", sql, err)
			}
		}
	}

	// Real server on a real socket; the chaos proxy in front of it.
	srv := server.New(p, server.Config{FetchRows: 3, SessionIdleTimeout: time.Minute})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = hs.Serve(ln)
	}()

	inj := faultnet.New(faultnet.Config{
		Seed:         41,
		Rate:         0.06,
		Latency:      300 * time.Microsecond,
		StallTimeout: 25 * time.Millisecond, // black holes resolve fast in-test
	})
	px, err := netchaos.New(netchaos.Config{Target: ln.Addr().String(), Faults: inj, ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	iters := 3
	if testing.Short() {
		iters = 1
	}
	var attempts, failures, successes int
	for round := 0; round < iters; round++ {
		c, err := remoteclient.DialOptions("http://"+px.Addr(), remoteclient.Options{
			MaxRetries:  4,
			BaseBackoff: time.Millisecond,
			// The soak wants retried successes, not fast-fails: the wire
			// really is flaky here, so the breaker must tolerate a burst.
			BreakerThreshold: 1000,
		})
		if err != nil {
			if !typedFailure(err) {
				t.Fatalf("dial through chaos failed untyped: %v", err)
			}
			failures++
			continue
		}
		for _, sql := range chaosCorpus() {
			for _, mode := range modes {
				attempts++
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				rows, err := c.QueryStreamMode(ctx, mode, sql, chaosArgs(strings.Count(sql, "?"))...)
				var got string
				if err == nil {
					got, err = marshalStreamed(rows)
					rows.Close()
				}
				cancel()
				if err != nil {
					failures++
					if !typedFailure(err) {
						t.Fatalf("%q: untyped failure through net chaos: %v", sql, err)
					}
					continue
				}
				successes++
				if want := oracle[key{sql, mode}]; got != want {
					t.Fatalf("%q (%v): success through net chaos diverged from oracle\ngot:  %s\nwant: %s",
						sql, mode, got, want)
				}
			}
		}
		_ = c.Close() // may itself be severed; the server reaps the session
	}
	if successes == 0 {
		t.Fatalf("no query survived the chaos net across %d attempts — defenses dead", attempts)
	}
	var injected int64
	for _, site := range inj.Report() {
		if strings.HasPrefix(site.Name, "net/") {
			injected += site.Total()
		}
	}
	if injected == 0 {
		t.Fatalf("proxy injected nothing across %d attempts — schedule dead", attempts)
	}
	t.Logf("net chaos: %d attempts, %d successes, %d typed failures, %d net faults injected, %d conns severed",
		attempts, successes, failures, injected, px.Severed())

	// Heal the wire and prove the same client path is fully alive.
	inj.SetRate(0)
	c, err := remoteclient.Dial("http://" + px.Addr())
	if err != nil {
		t.Fatalf("post-chaos dial: %v", err)
	}
	sql := "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS"
	rows, err := c.Query(context.Background(), sql)
	if err != nil {
		t.Fatalf("post-chaos query: %v", err)
	}
	got, err := marshalStreamed(rows)
	rows.Close()
	if err != nil || got != oracle[key{sql, ModeText}] {
		t.Fatalf("post-chaos rows diverged (err=%v)", err)
	}
	_ = c.Close()

	// Full teardown must leak nothing: proxy first (severing pooled
	// keep-alive conns), then the HTTP server.
	if err := px.Close(); err != nil {
		t.Fatalf("proxy close: %v", err)
	}
	sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	<-serveDone
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
