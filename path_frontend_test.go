// Conformance net for the path-template front end: the proof that the
// translation kernel is front-end agnostic. Every path statement lowers
// onto the same typed AST the SQL front end produces, so its canonical
// rendering (SelectStmt.SQL()) is the differential oracle — a path query
// and its rendered SQL-92 equivalent must produce byte-identical rows
// through the full pipeline, in both result modes, in process and over
// the wire. The golden corpus pins the generated XQuery and plan per
// statement; compile caching, streaming delivery, and EXPLAIN are
// asserted to be inherited, not reimplemented.
package aqualogic

import (
	"context"
	"database/sql"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/aqerr"
	"repro/internal/pathfront"
	"repro/internal/server"
)

var updatePathGolden = flag.Bool("update-path", false, "rewrite the path front-end golden files")

// pathCorpus covers every clause of the path-template grammar; the names
// key the golden files under testdata/path.
var pathCorpus = []struct {
	name string
	src  string
}{
	{"single_node", "match (c:CUSTOMERS) return c.CUSTOMERID, c.CUSTOMERNAME"},
	{"node_wildcard", "match (c:CUSTOMERS) return c"},
	{"star", "match (c:CUSTOMERS) return *"},
	{"edge_join", "match (c:CUSTOMERS)-[CUSTOMERID = CUSTID]->(p:PAYMENTS) return c.CUSTOMERNAME, p.PAYMENT"},
	{"chain", "match (a:CUSTOMERS)-[CUSTOMERID = CUSTID]->(b:PAYMENTS)-[b.CUSTID = d.CUSTID]->(d:PAYMENTS) return a.CUSTOMERNAME, d.PAYMENT"},
	{"filter_order_take", "match (c:CUSTOMERS)-[CUSTOMERID = CUSTID]->(p:PAYMENTS) where p.PAYMENT > 100 return c.CUSTOMERNAME, p.PAYMENT order by p.PAYMENT desc, c.CUSTOMERNAME take 5"},
	{"distinct_null_check", "match (c:CUSTOMERS) where c.CITY is not null return distinct c.CITY order by c.CITY desc"},
	{"params", "match (c:CUSTOMERS) where c.CUSTOMERID = ? return c.CUSTOMERNAME"},
	{"arithmetic", "match (p:PAYMENTS) return p.PAYMENT * 2 as DOUBLED, p.CUSTID order by 1 desc, 2 take 4"},
	{"boolean_mix", "match (c:CUSTOMERS) where c.CITY = 'Springfield' or not c.CUSTOMERID >= 1010 return c.CUSTOMERID, c.CITY"},
}

// TestPathGolden pins each corpus statement's compiled artifact — dialect,
// evaluator plan, and generated XQuery — to a golden file. Run with
// -update-path to regenerate after an intentional change.
func TestPathGolden(t *testing.T) {
	p := Demo()
	for _, tc := range pathCorpus {
		t.Run(tc.name, func(t *testing.T) {
			cq, err := p.CompileDialect(context.Background(), DialectPath, tc.src, ModeXML)
			if err != nil {
				t.Fatalf("compile %q: %v", tc.src, err)
			}
			stmt, err := pathfront.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			b.WriteString("-- dialect: " + string(cq.Dialect) + "\n")
			b.WriteString("-- lowered SQL: " + stmt.SQL() + "\n")
			b.WriteString("-- plan:\n")
			for _, line := range cq.Plan.Describe() {
				b.WriteString("--   " + line + "\n")
			}
			b.WriteString(cq.XQuery())
			got := b.String()

			path := filepath.Join("testdata", "path", tc.name+".golden")
			if *updatePathGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-path): %v", err)
			}
			if got != string(want) {
				t.Errorf("compiled artifact changed for %q\n--- got ---\n%s\n--- want ---\n%s", tc.src, got, want)
			}
		})
	}
}

// TestPathMatchesSQLFrontend is the cross-front-end differential net: a
// path statement and its lowered SQL-92 rendering must produce
// byte-identical rows, in both result modes — the two front ends meet on
// one AST and everything downstream is shared.
func TestPathMatchesSQLFrontend(t *testing.T) {
	p := Demo()
	for _, tc := range pathCorpus {
		stmt, err := pathfront.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sqlText := stmt.SQL()
		args := chaosArgs(stmt.ParamCount)
		for _, mode := range []ResultMode{ModeXML, ModeText} {
			viaSQL, err := p.QueryMode(mode, sqlText, args...)
			if err != nil {
				t.Fatalf("%s: mode %v: lowered SQL %q: %v", tc.name, mode, sqlText, err)
			}
			want := marshalRows(viaSQL)
			viaPath, err := p.QueryDialect(context.Background(), DialectPath, mode, tc.src, args...)
			if err != nil {
				t.Fatalf("%s: mode %v: path: %v", tc.name, mode, err)
			}
			got, err := marshalStreamed(viaPath)
			viaPath.Close()
			if err != nil {
				t.Fatalf("%s: mode %v: path iteration: %v", tc.name, mode, err)
			}
			if got != want {
				t.Fatalf("%s: mode %v: path rows diverged from SQL\npath: %s\nsql:  %s", tc.name, mode, got, want)
			}
		}
	}
}

// TestPathCompileCachedAndStreams asserts the path front end inherits the
// compile cache and the streaming cursor: the second run of a path query
// is a cache hit on an artifact recording the path dialect, and rows
// arrive through the pull cursor before the result is materialized.
func TestPathCompileCachedAndStreams(t *testing.T) {
	p := Demo()
	const q = "match (c:CUSTOMERS)-[CUSTOMERID = CUSTID]->(p:PAYMENTS) return c.CUSTOMERNAME, p.PAYMENT"

	cq, err := p.CompileDialect(context.Background(), DialectPath, q, ModeText)
	if err != nil {
		t.Fatal(err)
	}
	if cq.Dialect != DialectPath {
		t.Fatalf("artifact records dialect %q, want %q", cq.Dialect, DialectPath)
	}
	before := p.CompileStats()
	again, err := p.CompileDialect(context.Background(), DialectPath, "match  (c:customers)-[customerid = custid]->(p:payments)  return c.CUSTOMERNAME, p.PAYMENT", ModeText)
	if err != nil {
		t.Fatal(err)
	}
	after := p.CompileStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("re-spelled path query missed the cache: %+v -> %+v", before, after)
	}
	if again != cq {
		t.Fatal("cache hit returned a different artifact")
	}

	rows, err := p.QueryDialect(context.Background(), DialectPath, ModeText, q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
		if n == 3 {
			break // streaming: consuming a prefix must not require the full result
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("streamed %d rows, want a 3-row prefix", n)
	}
}

// TestPathExplainThroughDriver drives EXPLAIN of a path statement through
// database/sql over a dialect=path DSN: the rendered artifact carries the
// dialect header and every inherited section (stage trace with the path
// front end's own lex/parse spans, contexts, XQuery, plan).
func TestPathExplainThroughDriver(t *testing.T) {
	p := Demo()
	p.RegisterDriver("pathexplain")
	db, err := sql.Open("aqualogic", "pathexplain?dialect=path")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rows, err := db.Query("EXPLAIN match (c:CUSTOMERS)-[CUSTOMERID = CUSTID]->(p:PAYMENTS) where p.PAYMENT > 100 return c.CUSTOMERNAME")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out strings.Builder
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		out.WriteString(line + "\n")
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"-- dialect: path",
		"-- stage trace:",
		"lex",
		"parse",
		"-- query contexts (stage one):",
		"-- generated XQuery (stage three):",
		"-- query plan (evaluator):",
		"hash join",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("path EXPLAIN missing %q:\n%s", want, text)
		}
	}
}

// TestServedPathMatchesInProcess extends the wire conformance net across
// dialects: path statements prepared and executed over the wire — with a
// small fetch chunk, so results stream across multiple fetches — must
// deliver byte-identical rows to the in-process oracle, and failing path
// statements must surface the same typed-error kind on both sides.
func TestServedPathMatchesInProcess(t *testing.T) {
	p, _, c := newLoopback(t, server.Config{FetchRows: 3, SessionIdleTimeout: time.Minute})
	for _, mode := range []ResultMode{ModeXML, ModeText} {
		for _, tc := range pathCorpus {
			stmt, err := pathfront.Parse(tc.src)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			args := chaosArgs(stmt.ParamCount)
			local, err := p.QueryDialect(context.Background(), DialectPath, mode, tc.src, args...)
			if err != nil {
				t.Fatalf("%s: mode %v: in-process: %v", tc.name, mode, err)
			}
			want := marshalRows(local)

			// Prepared over the wire: the dialect travels with the prepare
			// and is pinned in the session's statement table.
			pstmt, err := c.PrepareDialect(context.Background(), string(DialectPath), tc.src, mode)
			if err != nil {
				t.Fatalf("%s: mode %v: remote prepare: %v", tc.name, mode, err)
			}
			if pstmt.ParamCount() != stmt.ParamCount {
				t.Fatalf("%s: remote prepare reports %d params, want %d", tc.name, pstmt.ParamCount(), stmt.ParamCount)
			}
			remote, err := pstmt.Execute(context.Background(), args...)
			if err != nil {
				t.Fatalf("%s: mode %v: remote execute: %v", tc.name, mode, err)
			}
			got, err := drainClose(remote)
			if err != nil {
				t.Fatalf("%s: mode %v: remote iteration: %v", tc.name, mode, err)
			}
			if got != want {
				t.Fatalf("%s: mode %v: served path rows diverged from in-process\ngot:  %s\nwant: %s",
					tc.name, mode, got, want)
			}

			// Ad-hoc execute with an explicit dialect takes the same path.
			adhoc, err := c.QueryDialect(context.Background(), string(DialectPath), mode, tc.src, args...)
			if err != nil {
				t.Fatalf("%s: mode %v: remote ad-hoc: %v", tc.name, mode, err)
			}
			if got, err = drainClose(adhoc); err != nil {
				t.Fatalf("%s: mode %v: remote ad-hoc iteration: %v", tc.name, mode, err)
			}
			if got != want {
				t.Fatalf("%s: mode %v: ad-hoc served path rows diverged\ngot:  %s\nwant: %s", tc.name, mode, got, want)
			}
		}
	}

	// Failing path statements: the typed-error kind must survive the wire.
	failing := []string{
		"match (c:CUSTOMERS) return",              // syntax error
		"match (c:NO_SUCH_TABLE) return c",        // unknown table
		"match (c:CUSTOMERS), (c:PAYMENTS) match", // rebound binder
	}
	for _, src := range failing {
		_, lerr := p.QueryDialect(context.Background(), DialectPath, ModeText, src)
		_, rerr := c.QueryDialect(context.Background(), string(DialectPath), ModeText, src)
		if lerr == nil || rerr == nil {
			t.Fatalf("%q: expected both paths to fail (local=%v remote=%v)", src, lerr, rerr)
		}
		if lk, rk := errKindName(lerr), errKindName(rerr); lk != rk {
			t.Fatalf("%q: error kind diverged: in-process %s, served %s (%v vs %v)", src, lk, rk, lerr, rerr)
		}
	}

	// An unregistered dialect is a typed permanent error at the server.
	if _, err := c.QueryDialect(context.Background(), "sparql", ModeText, "whatever"); errKindName(err) != aqerr.KindPermanent.String() {
		t.Fatalf("unknown dialect over the wire: got %v, want a permanent-kind error", err)
	}
}
