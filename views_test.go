package aqualogic

import (
	"strings"
	"testing"
)

// Logical data service (view) tests — the paper's §2 layering: new data
// services defined by queries over existing ones, themselves queryable and
// further composable.

func TestDefineViewBasic(t *testing.T) {
	p := Demo()
	err := p.DefineView("Logical", "BIG_SPENDERS", `
		SELECT CUSTID, SUM(PAYMENT) AS TOTAL FROM PAYMENTS
		GROUP BY CUSTID HAVING SUM(PAYMENT) > 500`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.Query("SELECT COUNT(*) FROM BIG_SPENDERS")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	n, _, _ := rows.Int64(0)
	if n == 0 {
		t.Fatal("expected some big spenders in the demo data")
	}
	// The view's rows agree with the underlying query.
	direct, err := p.Query(`SELECT COUNT(*) FROM (SELECT CUSTID, SUM(PAYMENT) AS TOTAL
		FROM PAYMENTS GROUP BY CUSTID HAVING SUM(PAYMENT) > 500) AS D`)
	if err != nil {
		t.Fatal(err)
	}
	direct.Next()
	want, _, _ := direct.Int64(0)
	if n != want {
		t.Fatalf("view count %d != direct count %d", n, want)
	}
}

func TestViewJoinsWithBaseTable(t *testing.T) {
	p := Demo()
	if err := p.DefineView("Logical", "PAYTOTALS", `
		SELECT CUSTID, SUM(PAYMENT) AS TOTAL FROM PAYMENTS GROUP BY CUSTID`); err != nil {
		t.Fatal(err)
	}
	rows, err := p.Query(`
		SELECT C.CUSTOMERNAME, V.TOTAL
		FROM CUSTOMERS C INNER JOIN PAYTOTALS V ON C.CUSTOMERID = V.CUSTID
		ORDER BY V.TOTAL DESC FETCH FIRST 3 ROWS ONLY`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("rows = %d", rows.Len())
	}
	rows.Next()
	if _, ok, _ := rows.Float64(1); !ok {
		t.Fatal("total should be non-null")
	}
}

func TestViewOverView(t *testing.T) {
	p := Demo()
	if err := p.DefineView("Logical", "V1", "SELECT CUSTOMERID AS ID, CITY FROM CUSTOMERS WHERE CITY IS NOT NULL"); err != nil {
		t.Fatal(err)
	}
	if err := p.DefineView("Logical", "V2", "SELECT CITY, COUNT(*) AS N FROM V1 GROUP BY CITY"); err != nil {
		t.Fatal(err)
	}
	rows, err := p.Query("SELECT CITY FROM V2 WHERE N > 1 ORDER BY CITY")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("expected multi-customer cities")
	}
}

func TestViewVisibleThroughDriver(t *testing.T) {
	p := Demo()
	if err := p.DefineView("Logical", "DRIVER_VIEW", "SELECT CUSTOMERID, CUSTOMERNAME FROM CUSTOMERS"); err != nil {
		t.Fatal(err)
	}
	p.RegisterDriver("views-test")
	db := openSQL(t, "views-test")
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM DRIVER_VIEW").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("count = %d", n)
	}
	// The view shows up in SHOW TABLES.
	rows, err := db.Query("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	found := false
	for rows.Next() {
		var cat, schema, name, typ string
		if err := rows.Scan(&cat, &schema, &name, &typ); err != nil {
			t.Fatal(err)
		}
		if name == "DRIVER_VIEW" {
			found = true
		}
	}
	if !found {
		t.Fatal("view missing from SHOW TABLES")
	}
}

func TestViewNullColumnsStayNull(t *testing.T) {
	p := Demo()
	if err := p.DefineView("Logical", "CITYVIEW", "SELECT CUSTOMERID AS ID, CITY FROM CUSTOMERS"); err != nil {
		t.Fatal(err)
	}
	rows, err := p.Query("SELECT COUNT(*) FROM CITYVIEW WHERE CITY IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	n, _, _ := rows.Int64(0)
	if n == 0 {
		t.Fatal("NULL cities must survive the view boundary")
	}
}

func TestDefineViewErrors(t *testing.T) {
	p := Demo()
	if err := p.DefineView("L", "BAD1", "SELECT NOPE FROM CUSTOMERS"); err == nil {
		t.Fatal("invalid view SQL should fail")
	}
	if err := p.DefineView("L", "BAD2", "SELECT CUSTOMERID FROM CUSTOMERS WHERE CUSTOMERID = ?"); err == nil ||
		!strings.Contains(err.Error(), "parameter") {
		t.Fatalf("parameterized view: %v", err)
	}
	if err := p.DefineView("L", "BAD3", "SELECT CUSTOMERID, CUSTOMERID FROM CUSTOMERS"); err == nil ||
		!strings.Contains(err.Error(), "duplicate output column") {
		t.Fatalf("duplicate labels: %v", err)
	}
	if err := p.DefineView("L", "CUSTOMERS", "SELECT CUSTOMERID FROM CUSTOMERS"); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("name clash: %v", err)
	}
}

func TestCreateViewThroughDriver(t *testing.T) {
	p := Demo()
	p.RegisterDriver("create-view-test")
	db := openSQL(t, "create-view-test")
	_, err := db.Exec(`CREATE VIEW Logical.SQLVIEW AS
		SELECT CUSTID, COUNT(*) AS N FROM PAYMENTS GROUP BY CUSTID`)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM SQLVIEW").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("view should have rows")
	}
	// Bad view SQL surfaces as an error.
	if _, err := db.Exec("CREATE VIEW BROKEN AS SELECT NOPE FROM CUSTOMERS"); err == nil {
		t.Fatal("invalid view should fail")
	}
	if _, err := db.Exec("CREATE VIEW MALFORMED SELECT 1"); err == nil {
		t.Fatal("missing AS should fail")
	}
	// Servers without the hook refuse.
	// (internal/driver tests cover the nil-hook path directly.)
}

func TestDefineViewInvalidatesCompiledQueries(t *testing.T) {
	p := Demo()
	sql := "SELECT BIG FROM BIGSPENDERS"
	// Compiling before the view exists fails — and that failure must not
	// pin the name: defining the view retires everything compiled against
	// the old catalog, so the verbatim statement then succeeds.
	if _, err := p.Query(sql); err == nil {
		t.Fatal("query against missing view should fail")
	}
	if err := p.DefineView("Views", "BIGSPENDERS",
		"SELECT CUSTID ID, PAYMENT BIG FROM PAYMENTS WHERE PAYMENT > 100"); err != nil {
		t.Fatal(err)
	}
	rows, err := p.Query(sql)
	if err != nil {
		t.Fatalf("query after CREATE VIEW: %v", err)
	}
	if !rows.Next() {
		t.Fatal("view returned no rows")
	}
	// And the repeat is a compile-cache hit on the new artifact.
	if _, err := p.Query(sql); err != nil {
		t.Fatal(err)
	}
	if cs := p.CompileStats(); cs.Hits < 1 || cs.Invalidations < 1 {
		t.Fatalf("compile stats = %+v", cs)
	}
}
