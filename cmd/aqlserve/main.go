// Command aqlserve runs the network data-service server: the AquaLogic
// DSP server process of the paper's client/server architecture. It fronts
// the demo platform (TPC-C-flavored order/customer/payment data plus the
// examples' logical data services) with the internal/wire HTTP protocol —
// handshake, prepare, execute, chunked fetch, explain, metadata browse —
// under session limits, admission control, and idle-session reaping.
//
// A remote client (internal/remoteclient, or anything speaking the JSON
// protocol) then sees the same query and catalog surfaces the in-process
// facade offers.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/faultnet"
	"repro/internal/resilient"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "listen address")
	maxSessions := flag.Int("max-sessions", 0, "session cap (0 = default 4096)")
	maxQueries := flag.Int("max-queries", 0, "concurrent evaluation cap (0 = default 256)")
	idle := flag.Duration("session-idle", 0, "idle-session reap timeout (0 = default 60s)")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-query evaluation deadline (0 = unbounded)")
	fetchRows := flag.Int("fetch-rows", 0, "rows per fetch chunk (0 = default 256)")
	admissionWait := flag.Duration("admission-wait", 0, "max queue wait before a shed (0 = default 50ms)")
	costPerSlot := flag.Int64("cost-per-slot", 0, "predicted cost per admission slot (0 = default 10000, negative = count-only admission)")
	maxWeight := flag.Int64("max-query-weight", 0, "admission-weight clamp per query (0 = default max-queries/4)")
	admissionQueue := flag.Int("admission-queue", 0, "bounded admission queue length (0 = default 4×max-queries)")
	brownoutDecay := flag.Duration("brownout-decay", 0, "brownout level step-down interval after pressure stops (0 = default 250ms)")
	resilience := flag.Bool("resilient", true, "enable the retry/breaker/stale-cache layer")
	faultRate := flag.Float64("fault-rate", 0, "faultnet injection probability in [0,1] (0 = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "faultnet deterministic schedule seed")
	flag.Parse()

	p := aqualogic.Demo()
	rc := resilient.Config{
		MaxSessions:          *maxSessions,
		MaxConcurrentQueries: *maxQueries,
		SessionIdleTimeout:   *idle,
		QueryTimeout:         *queryTimeout,
	}.WithDefaults()
	if *resilience {
		p.EnableResilience(rc)
	}
	var inj *faultnet.Injector
	if *faultRate > 0 {
		inj = p.EnableFaults(aqualogic.FaultConfig{Seed: *faultSeed, Rate: *faultRate})
	}

	srv := server.New(p, server.Config{
		MaxSessions:          rc.MaxSessions,
		MaxConcurrentQueries: rc.MaxConcurrentQueries,
		AdmissionWait:        *admissionWait,
		CostPerSlot:          *costPerSlot,
		MaxQueryWeight:       *maxWeight,
		AdmissionQueue:       *admissionQueue,
		BrownoutDecay:        *brownoutDecay,
		SessionIdleTimeout:   rc.SessionIdleTimeout,
		QueryTimeout:         rc.QueryTimeout,
		FetchRows:            *fetchRows,
		Faults:               inj,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("aqlserve: listening on %s (sessions<=%d queries<=%d idle=%s)\n",
		*addr, rc.MaxSessions, rc.MaxConcurrentQueries, rc.SessionIdleTimeout)

	select {
	case err := <-done:
		fmt.Fprintln(os.Stderr, "aqlserve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("aqlserve: %s — draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	srv.Close()
	fmt.Println("aqlserve: shutdown complete")
}
