// Command benchharness regenerates every experiment table recorded in
// EXPERIMENTS.md: the §4 result-handling sweep (P1), translation latency
// per query class (P2), and the metadata cache study (P3). The same code
// paths back the testing.B benchmarks in bench_test.go; this binary prints
// the paper-style rows directly.
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	if err := bench.Report(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}
