// Command benchharness regenerates every experiment table recorded in
// EXPERIMENTS.md: the §4 result-handling sweep (P1), translation latency
// per query class (P2), the metadata cache study (P3), and the per-stage
// pipeline breakdown recorded through the observability layer (P4). The
// same code paths back the testing.B benchmarks in bench_test.go; this
// binary prints the paper-style rows directly.
//
// With -stagejson, the P4 per-stage timings are additionally written as
// machine-readable JSON (conventionally BENCH_stages.json), so later perf
// work can diff stage-level numbers instead of only end-to-end latency.
// With -evaljson, the P6 join-cardinality sweep (naive nested loop vs the
// evaluator's planned hash join) is written the same way (conventionally
// BENCH_eval.json). With -faultjson, the P7 fault-rate sweep (query
// survival and throughput with and without the resilience layer) is
// written too (conventionally BENCH_faults.json). With -compilejson, the
// P8 compile-path sweep (legacy serialize∘parse vs compiled-query cold vs
// cached) is written as well (conventionally BENCH_compile.json). With
// -streamjson, the P9 streaming-delivery sweep (pull cursor vs
// materialize-then-decode: time to first row, total latency, live-heap
// high-water) is written too (conventionally BENCH_stream.json). With
// -federatejson, the P13 federation sweep (shard-key pruning vs full
// scatter-gather over simulated remote shards) is written as well
// (conventionally BENCH_federate.json).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/bench"
)

func main() {
	stageJSON := flag.String("stagejson", "", "also write the per-stage breakdown as JSON to this path (e.g. BENCH_stages.json)")
	stageIters := flag.Int("stageiters", 50, "iterations per workload class for the stage breakdown JSON")
	evalJSON := flag.String("evaljson", "", "also write the P6 join-cardinality sweep as JSON to this path (e.g. BENCH_eval.json)")
	faultJSON := flag.String("faultjson", "", "also write the P7 fault-rate sweep as JSON to this path (e.g. BENCH_faults.json)")
	compileJSON := flag.String("compilejson", "", "also write the P8 compile-path sweep as JSON to this path (e.g. BENCH_compile.json)")
	compileIters := flag.Int("compileiters", 200, "iterations per workload class for the compile-path JSON")
	streamJSON := flag.String("streamjson", "", "also write the P9 streaming-delivery sweep as JSON to this path (e.g. BENCH_stream.json)")
	serveJSON := flag.String("servejson", "", "also write the P10 network-front-end load sweep as JSON to this path (e.g. BENCH_serve.json)")
	serveClients := flag.Int("serveclients", bench.DefaultServeClients, "concurrent simulated clients for the P10 sweep")
	serveOps := flag.Int("serveops", bench.DefaultServeOps, "operations per client for the P10 sweep")
	overloadJSON := flag.String("overloadjson", "", "also write the P12 overload-resilience sweep as JSON to this path (e.g. BENCH_overload.json)")
	overloadCap := flag.Int("overloadcap", bench.DefaultOverloadCapacity, "weighted admission capacity for the P12 sweep")
	overloadOps := flag.Int("overloadops", bench.DefaultOverloadOps, "operations per client for the P12 sweep")
	federateJSON := flag.String("federatejson", "", "also write the P13 federation sweep as JSON to this path (e.g. BENCH_federate.json)")
	flag.Parse()

	if err := bench.Report(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
	if *stageJSON != "" {
		if err := bench.WriteStageJSON(*stageJSON, *stageIters); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote per-stage timings to %s\n", *stageJSON)
	}
	if *evalJSON != "" {
		if err := bench.WriteEvalJoinJSON(*evalJSON, bench.DefaultEvalJoinSizes); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote join-planning sweep to %s\n", *evalJSON)
	}
	if *faultJSON != "" {
		if err := bench.WriteFaultSweepJSON(*faultJSON, bench.DefaultFaultRates, bench.DefaultFaultRuns); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote fault-rate sweep to %s\n", *faultJSON)
	}
	if *compileJSON != "" {
		if err := bench.WriteCompileJSON(*compileJSON, *compileIters); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote compile-path sweep to %s\n", *compileJSON)
	}
	if *streamJSON != "" {
		if err := bench.WriteStreamJSON(*streamJSON, bench.DefaultStreamRows); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote streaming-delivery sweep to %s\n", *streamJSON)
	}
	if *serveJSON != "" {
		if err := bench.WriteServeJSON(*serveJSON, aqualogic.Demo(), *serveClients, *serveOps); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote network-front-end load sweep to %s\n", *serveJSON)
	}
	if *overloadJSON != "" {
		if err := bench.WriteOverloadJSON(*overloadJSON, aqualogic.Demo(), *overloadCap, *overloadOps); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote overload-resilience sweep to %s\n", *overloadJSON)
	}
	if *federateJSON != "" {
		if err := bench.WriteFederateJSON(*federateJSON, bench.DefaultFederateShards, bench.DefaultFederateRows); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote federation sweep to %s\n", *federateJSON)
	}
}
