// Command sql2xq translates SQL-92 SELECT statements into XQuery against
// the demo application's catalog, printing the generated query — the
// translator half of the paper's JDBC driver, exposed as a CLI.
//
// Usage:
//
//	sql2xq [-dialect sql|path] [-mode xml|text] [-columns] [-explain] "SELECT * FROM CUSTOMERS"
//	echo "SELECT ..." | sql2xq
//
// -dialect selects the query language the statement is written in (any
// registered front end; default sql). -explain prints the stage-by-stage
// translation trace (wall time, sizes, stage detail) and the catalog
// cache effect before the generated query.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	aqualogic "repro"
)

func main() {
	mode := flag.String("mode", "xml", "result handling mode: xml (RECORDSET output) or text (§4 delimiter-separated wrapper)")
	dialect := flag.String("dialect", "sql", "query language the statement is written in (a registered dialect: sql, path)")
	columns := flag.Bool("columns", false, "also print the computed result schema")
	explain := flag.Bool("explain", false, "print the stage trace (lex/parse/…/serialize timings and detail) before the query")
	flag.Parse()

	var sql string
	if flag.NArg() > 0 {
		sql = strings.Join(flag.Args(), " ")
	} else {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sql = string(data)
	}
	if strings.TrimSpace(sql) == "" {
		fatal(fmt.Errorf("no SQL given (pass as argument or on stdin)"))
	}

	resultMode := aqualogic.ModeXML
	switch *mode {
	case "xml":
	case "text":
		resultMode = aqualogic.ModeText
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	p := aqualogic.Demo()
	var res *aqualogic.Translation
	var err error
	if *explain {
		var trace *aqualogic.Trace
		res, trace, err = p.ExplainDialect(aqualogic.Dialect(*dialect), sql, resultMode)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- dialect: %s\n", *dialect)
		fmt.Println("-- stage trace:")
		trace.Render(os.Stdout, true)
		cache := p.MetadataStats()
		fmt.Printf("-- catalog cache: hits=%d misses=%d\n", cache.Hits, cache.Misses)
		fmt.Println("-- query contexts (stage one):")
		fmt.Print(res.Contexts.Tree())
		fmt.Println("-- generated XQuery (stage three):")
	} else {
		res, err = p.TranslateDialect(aqualogic.Dialect(*dialect), sql, resultMode)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Print(res.XQuery())
	if *explain {
		fmt.Println("-- query plan (evaluator):")
		for _, line := range aqualogic.PlanQuery(res).Describe() {
			fmt.Println(line)
		}
	}
	if *columns {
		fmt.Println()
		fmt.Println("-- result schema:")
		for i, c := range res.Columns {
			nullable := ""
			if c.Nullable {
				nullable = " NULL"
			}
			fmt.Printf("--   %d. %s %s%s (element <%s>)\n", i+1, c.Label, c.Type, nullable, c.ElementName)
		}
		if res.ParamCount > 0 {
			fmt.Printf("-- parameters: %d\n", res.ParamCount)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sql2xq:", err)
	os.Exit(1)
}
