// Command aqlshell is an interactive SQL shell over the demo AquaLogic
// deployment, speaking through the database/sql driver — the closest thing
// to pointing a JDBC console at the paper's system.
//
// Supported statements: SQL-92 SELECT (translated to XQuery and executed),
// EXPLAIN <select> (stage-by-stage translation trace, cache effect, query
// contexts, and the generated XQuery), SHOW CATALOGS/SCHEMAS/TABLES/
// PROCEDURES, SHOW COLUMNS FROM <t>, CALL <proc>(args), plus the shell
// commands \x (print the XQuery a SELECT translates to), \c (query
// contexts), \p (evaluator query plan), \s (pipeline metrics snapshot),
// \r (resilience counters: retries, breaker trips, stale serves, injected
// faults), \q (compile-cache counters: hits, misses, single-flight
// shares, evictions, invalidations, size, metadata generation), and
// \f n (fetch size: page results n rows at a time straight off the live
// cursor — rows print as the evaluation produces them, and abandoning a
// page cancels the rest of the query; \f 0 restores whole-result
// formatting). Type "quit" or "exit" to leave.
package main

import (
	"bufio"
	"database/sql"
	"fmt"
	"os"
	"strconv"
	"strings"

	aqualogic "repro"
	_ "repro/internal/driver"
)

func main() {
	p := aqualogic.Demo()
	p.RegisterDriver("demo")
	db, err := sql.Open("aqualogic", "demo")
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqlshell:", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Println("aqlshell — SQL over the AquaLogic-style demo deployment")
	fmt.Println(`type SQL (SELECT/SHOW/CALL), "EXPLAIN SELECT ..." for the stage trace,`)
	fmt.Println(`"\x SELECT ..." to see the XQuery, "\c SELECT ..." to see the query`)
	fmt.Println(`contexts (Figure 4), "\p SELECT ..." for the evaluator's query plan`)
	fmt.Println(`(with per-scan cardinality and hash-join cost annotations once source`)
	fmt.Println(`statistics are observed — run a query first, or ANALYZE via the API),`)
	fmt.Println(`"\s" for pipeline metrics (incl. stats hits and parallel workers),`)
	fmt.Println(`"\r" for resilience counters, "\q" for`)
	fmt.Println(`compile-cache counters, "\f n" to page results n rows at a time off`)
	fmt.Println(`the live cursor (\f 0 to turn paging off), "quit" or "exit" to leave`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fetchSize := 0 // 0: materialize and align columns; n>0: page n rows at a time
	for {
		fmt.Print("sql> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit"):
			return
		case line == `\q`:
			cs := p.CompileStats()
			fmt.Printf("compile cache: hits=%d misses=%d shared=%d evictions=%d invalidations=%d\n",
				cs.Hits, cs.Misses, cs.Shared, cs.Evictions, cs.Invalidations)
			fmt.Printf("entries: %d/%d, metadata generation: %d\n", cs.Size, cs.MaxEntries, cs.Generation)
			aqualogic.Stats().RenderCompileCache(os.Stdout)
		case line == `\f`:
			if fetchSize > 0 {
				fmt.Printf("fetch size: %d rows per page\n", fetchSize)
			} else {
				fmt.Println("paging off (results materialize before printing)")
			}
		case strings.HasPrefix(line, `\f `):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, `\f `)))
			if err != nil || n < 0 {
				fmt.Println(`usage: \f <rows-per-page>   (0 turns paging off)`)
				continue
			}
			fetchSize = n
			if n == 0 {
				fmt.Println("paging off")
			} else {
				fmt.Printf("paging %d row(s) at a time\n", n)
			}
		case strings.HasPrefix(line, `\x `):
			xq, err := p.TranslateText(strings.TrimPrefix(line, `\x `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(xq)
		case line == `\s`:
			aqualogic.Stats().Render(os.Stdout)
			cache := p.MetadataStats()
			fmt.Printf("platform metadata cache: hits=%d misses=%d\n", cache.Hits, cache.Misses)
		case line == `\r`:
			aqualogic.Stats().RenderResilience(os.Stdout)
			cache := p.MetadataStats()
			fmt.Printf("metadata cache: stale serves=%d shared fetches=%d degraded=%v\n",
				cache.StaleServes, cache.Shared, cache.Degraded)
		case strings.HasPrefix(line, `\p `):
			cq, err := p.Compile(strings.TrimPrefix(line, `\p `), aqualogic.ModeText)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, planLine := range cq.Plan.Describe() {
				fmt.Println(planLine)
			}
		case strings.HasPrefix(line, `\c `):
			res, err := p.Translate(strings.TrimPrefix(line, `\c `), aqualogic.ModeXML)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(res.Contexts.Tree())
		default:
			var err error
			if fetchSize > 0 {
				err = runQueryPaged(db, line, fetchSize, scanner)
			} else {
				err = runQuery(db, line)
			}
			if err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

// runQueryPaged prints rows straight off the streaming cursor, pageSize at
// a time: the first page appears while the evaluation is still running,
// and declining the next page closes the result set, which cancels the
// remaining evaluation server-side.
func runQueryPaged(db *sql.DB, query string, pageSize int, in *bufio.Scanner) error {
	rows, err := db.Query(query)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(cols, " | "))
	n := 0
	for rows.Next() {
		raw := make([]any, len(cols))
		for i := range raw {
			raw[i] = new(sql.NullString)
		}
		if err := rows.Scan(raw...); err != nil {
			return err
		}
		rec := make([]string, len(cols))
		for i := range raw {
			ns := raw[i].(*sql.NullString)
			if ns.Valid {
				rec[i] = ns.String
			} else {
				rec[i] = "NULL"
			}
		}
		fmt.Println(strings.Join(rec, " | "))
		n++
		if n%pageSize == 0 {
			fmt.Printf("-- %d row(s) so far; Enter for next %d, q to stop -- ", n, pageSize)
			if !in.Scan() || strings.EqualFold(strings.TrimSpace(in.Text()), "q") {
				fmt.Printf("(%d row(s), rest of the query cancelled)\n", n)
				return rows.Close()
			}
		}
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d row(s))\n", n)
	return nil
}

func runQuery(db *sql.DB, query string) error {
	rows, err := db.Query(query)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return err
	}

	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	var table [][]string
	for rows.Next() {
		raw := make([]any, len(cols))
		for i := range raw {
			raw[i] = new(sql.NullString)
		}
		if err := rows.Scan(raw...); err != nil {
			return err
		}
		rec := make([]string, len(cols))
		for i := range raw {
			ns := raw[i].(*sql.NullString)
			if ns.Valid {
				rec[i] = ns.String
			} else {
				rec[i] = "NULL"
			}
			if len(rec[i]) > widths[i] {
				widths[i] = len(rec[i])
			}
		}
		table = append(table, rec)
	}
	if err := rows.Err(); err != nil {
		return err
	}

	printRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[i], v)
		}
		fmt.Println()
	}
	printRow(cols)
	for i, w := range widths {
		if i > 0 {
			fmt.Print("-+-")
		}
		fmt.Print(strings.Repeat("-", w))
	}
	fmt.Println()
	for _, rec := range table {
		printRow(rec)
	}
	fmt.Printf("(%d row(s))\n", len(table))
	return nil
}
