// Command aqlshell is an interactive SQL shell over the demo AquaLogic
// deployment, speaking through the database/sql driver — the closest thing
// to pointing a JDBC console at the paper's system.
//
// Supported statements: SQL-92 SELECT (translated to XQuery and executed),
// EXPLAIN <select> (stage-by-stage translation trace, cache effect, query
// contexts, and the generated XQuery), SHOW CATALOGS/SCHEMAS/TABLES/
// PROCEDURES, SHOW COLUMNS FROM <t>, CALL <proc>(args), plus the shell
// commands \x (print the XQuery a SELECT translates to), \c (query
// contexts), \p (evaluator query plan), \s (pipeline metrics snapshot),
// \r (resilience counters: retries, breaker trips, stale serves, injected
// faults), and \q (compile-cache counters: hits, misses, single-flight
// shares, evictions, invalidations, size, metadata generation). Type
// "quit" or "exit" to leave.
package main

import (
	"bufio"
	"database/sql"
	"fmt"
	"os"
	"strings"

	aqualogic "repro"
	_ "repro/internal/driver"
)

func main() {
	p := aqualogic.Demo()
	p.RegisterDriver("demo")
	db, err := sql.Open("aqualogic", "demo")
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqlshell:", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Println("aqlshell — SQL over the AquaLogic-style demo deployment")
	fmt.Println(`type SQL (SELECT/SHOW/CALL), "EXPLAIN SELECT ..." for the stage trace,`)
	fmt.Println(`"\x SELECT ..." to see the XQuery, "\c SELECT ..." to see the query`)
	fmt.Println(`contexts (Figure 4), "\p SELECT ..." for the evaluator's query plan,`)
	fmt.Println(`"\s" for pipeline metrics, "\r" for resilience counters, "\q" for`)
	fmt.Println(`compile-cache counters, "quit" or "exit" to leave`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("sql> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit"):
			return
		case line == `\q`:
			cs := p.CompileStats()
			fmt.Printf("compile cache: hits=%d misses=%d shared=%d evictions=%d invalidations=%d\n",
				cs.Hits, cs.Misses, cs.Shared, cs.Evictions, cs.Invalidations)
			fmt.Printf("entries: %d/%d, metadata generation: %d\n", cs.Size, cs.MaxEntries, cs.Generation)
			aqualogic.Stats().RenderCompileCache(os.Stdout)
		case strings.HasPrefix(line, `\x `):
			xq, err := p.TranslateText(strings.TrimPrefix(line, `\x `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(xq)
		case line == `\s`:
			aqualogic.Stats().Render(os.Stdout)
			cache := p.MetadataStats()
			fmt.Printf("platform metadata cache: hits=%d misses=%d\n", cache.Hits, cache.Misses)
		case line == `\r`:
			aqualogic.Stats().RenderResilience(os.Stdout)
			cache := p.MetadataStats()
			fmt.Printf("metadata cache: stale serves=%d shared fetches=%d degraded=%v\n",
				cache.StaleServes, cache.Shared, cache.Degraded)
		case strings.HasPrefix(line, `\p `):
			cq, err := p.Compile(strings.TrimPrefix(line, `\p `), aqualogic.ModeText)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, planLine := range cq.Plan.Describe() {
				fmt.Println(planLine)
			}
		case strings.HasPrefix(line, `\c `):
			res, err := p.Translate(strings.TrimPrefix(line, `\c `), aqualogic.ModeXML)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(res.Contexts.Tree())
		default:
			if err := runQuery(db, line); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

func runQuery(db *sql.DB, query string) error {
	rows, err := db.Query(query)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return err
	}

	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	var table [][]string
	for rows.Next() {
		raw := make([]any, len(cols))
		for i := range raw {
			raw[i] = new(sql.NullString)
		}
		if err := rows.Scan(raw...); err != nil {
			return err
		}
		rec := make([]string, len(cols))
		for i := range raw {
			ns := raw[i].(*sql.NullString)
			if ns.Valid {
				rec[i] = ns.String
			} else {
				rec[i] = "NULL"
			}
			if len(rec[i]) > widths[i] {
				widths[i] = len(rec[i])
			}
		}
		table = append(table, rec)
	}
	if err := rows.Err(); err != nil {
		return err
	}

	printRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[i], v)
		}
		fmt.Println()
	}
	printRow(cols)
	for i, w := range widths {
		if i > 0 {
			fmt.Print("-+-")
		}
		fmt.Print(strings.Repeat("-", w))
	}
	fmt.Println()
	for _, rec := range table {
		printRow(rec)
	}
	fmt.Printf("(%d row(s))\n", len(table))
	return nil
}
