// Command aqlshell is an interactive SQL shell over the demo AquaLogic
// deployment, speaking through the database/sql driver — the closest thing
// to pointing a JDBC console at the paper's system.
//
// Supported statements: SQL-92 SELECT (translated to XQuery and executed),
// EXPLAIN <select> (stage-by-stage translation trace, cache effect, query
// contexts, and the generated XQuery), SHOW CATALOGS/SCHEMAS/TABLES/
// PROCEDURES, SHOW COLUMNS FROM <t>, CALL <proc>(args), plus the shell
// commands \d <dialect> (switch the query language: "sql" is the default,
// "path" the graph-pattern front end — every later statement, \x, \p, and
// \c parse in the chosen dialect), \x (print the XQuery a statement
// translates to), \c (query contexts), \p (evaluator query plan), \s
// (pipeline metrics snapshot),
// \r (resilience counters: retries, breaker trips, stale serves, injected
// faults), \src (per-source federation health: metadata generations,
// breaker states, and scan attribution for every registered backend),
// \q (compile-cache counters: hits, misses, single-flight
// shares, evictions, invalidations, size, metadata generation), and
// \f n (fetch size: page results n rows at a time straight off the live
// cursor — rows print as the evaluation produces them, and abandoning a
// page cancels the rest of the query; \f 0 restores whole-result
// formatting). Type "quit" or "exit" to leave.
//
// With -server <url> the shell connects to a running aqlserve process
// through the resilient remote client instead of the in-process demo:
// SQL and EXPLAIN travel the wire, \s renders the remote server's
// pipeline metrics, and \r renders the remote resilience picture — the
// server's admission/brownout/shed gauges from /v1/stats alongside this
// client's own breaker, retry, and hedge state.
package main

import (
	"bufio"
	"context"
	"database/sql"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	aqualogic "repro"
	_ "repro/internal/driver"
	"repro/internal/remoteclient"
)

func main() {
	serverURL := flag.String("server", "", "aqlserve URL (e.g. http://127.0.0.1:7117); empty runs the in-process demo")
	flag.Parse()
	if *serverURL != "" {
		runRemote(*serverURL)
		return
	}
	p := aqualogic.Demo()
	p.RegisterDriver("demo")
	dialect := aqualogic.DialectSQL
	db, err := sql.Open("aqualogic", "demo")
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqlshell:", err)
		os.Exit(1)
	}
	defer func() { db.Close() }()

	fmt.Println("aqlshell — SQL over the AquaLogic-style demo deployment")
	fmt.Println(`type SQL (SELECT/SHOW/CALL), "EXPLAIN SELECT ..." for the stage trace,`)
	fmt.Println(`"\x SELECT ..." to see the XQuery, "\c SELECT ..." to see the query`)
	fmt.Println(`contexts (Figure 4), "\p SELECT ..." for the evaluator's query plan`)
	fmt.Println(`(with per-scan cardinality and hash-join cost annotations once source`)
	fmt.Println(`statistics are observed — run a query first, or ANALYZE via the API),`)
	fmt.Println(`"\s" for pipeline metrics (incl. stats hits and parallel workers),`)
	fmt.Println(`"\r" for resilience counters, "\src" for per-source federation`)
	fmt.Println(`health (metadata generations, breakers, scan attribution), "\q" for`)
	fmt.Println(`compile-cache counters, "\f n" to page results n rows at a time off`)
	fmt.Println(`the live cursor (\f 0 to turn paging off), "\d <dialect>" to switch`)
	fmt.Printf("query language (registered: %s), \"quit\" or \"exit\" to leave\n",
		strings.Join(dialectNames(), ", "))

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fetchSize := 0 // 0: materialize and align columns; n>0: page n rows at a time
	for {
		fmt.Print("sql> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit"):
			return
		case line == `\d`:
			fmt.Printf("dialect: %s (registered: %s)\n", dialect, strings.Join(dialectNames(), ", "))
		case strings.HasPrefix(line, `\d `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\d `))
			d, ok := lookupDialect(name)
			if !ok {
				fmt.Printf("unknown dialect %q (registered: %s)\n", name, strings.Join(dialectNames(), ", "))
				continue
			}
			// Reopen the DSN with the dialect option: every connection the
			// pool hands out from here on parses in the chosen language.
			next, err := sql.Open("aqualogic", "demo?dialect="+string(d))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			db.Close()
			db, dialect = next, d
			fmt.Printf("dialect: %s\n", dialect)
		case line == `\q`:
			cs := p.CompileStats()
			fmt.Printf("compile cache: hits=%d misses=%d shared=%d evictions=%d invalidations=%d\n",
				cs.Hits, cs.Misses, cs.Shared, cs.Evictions, cs.Invalidations)
			fmt.Printf("entries: %d/%d, metadata generation: %d\n", cs.Size, cs.MaxEntries, cs.Generation)
			aqualogic.Stats().RenderCompileCache(os.Stdout)
		case line == `\f`:
			if fetchSize > 0 {
				fmt.Printf("fetch size: %d rows per page\n", fetchSize)
			} else {
				fmt.Println("paging off (results materialize before printing)")
			}
		case strings.HasPrefix(line, `\f `):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, `\f `)))
			if err != nil || n < 0 {
				fmt.Println(`usage: \f <rows-per-page>   (0 turns paging off)`)
				continue
			}
			fetchSize = n
			if n == 0 {
				fmt.Println("paging off")
			} else {
				fmt.Printf("paging %d row(s) at a time\n", n)
			}
		case strings.HasPrefix(line, `\x `):
			res, err := p.TranslateDialect(dialect, strings.TrimPrefix(line, `\x `), aqualogic.ModeXML)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(res.XQuery())
		case line == `\s`:
			aqualogic.Stats().Render(os.Stdout)
			cache := p.MetadataStats()
			fmt.Printf("platform metadata cache: hits=%d misses=%d\n", cache.Hits, cache.Misses)
		case line == `\r`:
			aqualogic.Stats().RenderResilience(os.Stdout)
			cache := p.MetadataStats()
			fmt.Printf("metadata cache: stale serves=%d shared fetches=%d degraded=%v\n",
				cache.StaleServes, cache.Shared, cache.Degraded)
		case line == `\src`:
			health := p.FederationStats()
			if len(health) == 0 {
				fmt.Printf("single-source platform (%s): no federation registered\n", p.App.Name)
				continue
			}
			scans := aqualogic.Stats().SourceScans
			for _, h := range health {
				fmt.Printf("source %s: metadata generation=%d cache hits=%d misses=%d degraded=%v scans=%d\n",
					h.Name, h.Generation, h.Metadata.Hits, h.Metadata.Misses, h.Metadata.Degraded, scans[h.Name])
				svcs := make([]string, 0, len(h.Breakers))
				for svc := range h.Breakers {
					svcs = append(svcs, svc)
				}
				sort.Strings(svcs)
				for _, svc := range svcs {
					fmt.Printf("  breaker %s: %v\n", svc, h.Breakers[svc])
				}
			}
		case strings.HasPrefix(line, `\p `):
			cq, err := p.CompileDialect(context.Background(), dialect, strings.TrimPrefix(line, `\p `), aqualogic.ModeText)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("-- dialect: %s\n", cq.Dialect)
			for _, planLine := range cq.Plan.Describe() {
				fmt.Println(planLine)
			}
		case strings.HasPrefix(line, `\c `):
			res, err := p.TranslateDialect(dialect, strings.TrimPrefix(line, `\c `), aqualogic.ModeXML)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(res.Contexts.Tree())
		default:
			var err error
			if fetchSize > 0 {
				err = runQueryPaged(db, line, fetchSize, scanner)
			} else {
				err = runQuery(db, line)
			}
			if err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

// runQueryPaged prints rows straight off the streaming cursor, pageSize at
// a time: the first page appears while the evaluation is still running,
// and declining the next page closes the result set, which cancels the
// remaining evaluation server-side.
func runQueryPaged(db *sql.DB, query string, pageSize int, in *bufio.Scanner) error {
	rows, err := db.Query(query)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(cols, " | "))
	n := 0
	for rows.Next() {
		raw := make([]any, len(cols))
		for i := range raw {
			raw[i] = new(sql.NullString)
		}
		if err := rows.Scan(raw...); err != nil {
			return err
		}
		rec := make([]string, len(cols))
		for i := range raw {
			ns := raw[i].(*sql.NullString)
			if ns.Valid {
				rec[i] = ns.String
			} else {
				rec[i] = "NULL"
			}
		}
		fmt.Println(strings.Join(rec, " | "))
		n++
		if n%pageSize == 0 {
			fmt.Printf("-- %d row(s) so far; Enter for next %d, q to stop -- ", n, pageSize)
			if !in.Scan() || strings.EqualFold(strings.TrimSpace(in.Text()), "q") {
				fmt.Printf("(%d row(s), rest of the query cancelled)\n", n)
				return rows.Close()
			}
		}
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d row(s))\n", n)
	return nil
}

// runRemote is the shell's wire mode: the same REPL against a running
// aqlserve process through the resilient remote client. Translation
// introspection (\x, \c, \p) is a compile-side feature and stays with
// the in-process mode; everything observable about a remote deployment
// — queries, EXPLAIN, server metrics, the resilience picture — is here.
func runRemote(url string) {
	c, err := remoteclient.Dial(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqlshell: connect:", err)
		os.Exit(1)
	}
	defer c.Close()

	fmt.Printf("aqlshell — connected to %s (session %s)\n", url, c.Session())
	fmt.Println(`type SQL, "EXPLAIN SELECT ..." for the remote plan, "\s" for remote`)
	fmt.Println(`pipeline metrics, "\r" for the resilience picture (server admission/`)
	fmt.Println(`brownout/shed state plus this client's breaker and retries), "\f n"`)
	fmt.Println(`to page results, "\d <dialect>" to switch query language, "quit" or`)
	fmt.Println(`"exit" to leave`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fetchSize := 0
	dialect := aqualogic.DialectSQL
	for {
		fmt.Print("sql> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit"):
			return
		case line == `\f`:
			if fetchSize > 0 {
				fmt.Printf("fetch size: %d rows per page\n", fetchSize)
			} else {
				fmt.Println("paging off")
			}
		case strings.HasPrefix(line, `\f `):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, `\f `)))
			if err != nil || n < 0 {
				fmt.Println(`usage: \f <rows-per-page>   (0 turns paging off)`)
				continue
			}
			fetchSize = n
		case line == `\d`:
			fmt.Printf("dialect: %s (registered locally: %s)\n", dialect, strings.Join(dialectNames(), ", "))
		case strings.HasPrefix(line, `\d `):
			// The name travels on the wire per statement; the server's own
			// registry validates it, so an unknown dialect fails at the next
			// query with the server's typed error.
			name := strings.TrimSpace(strings.TrimPrefix(line, `\d `))
			if d, ok := lookupDialect(name); ok {
				dialect = d
			} else {
				dialect = aqualogic.Dialect(name)
			}
			fmt.Printf("dialect: %s\n", dialect)
		case line == `\s`:
			resp, err := c.ServerStats(statsCtx())
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			resp.Pipeline.Render(os.Stdout)
		case line == `\r`:
			renderRemoteResilience(c)
		case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN "):
			text, err := c.ExplainDialect(context.Background(), string(dialect), strings.TrimSpace(line[len("EXPLAIN "):]), aqualogic.ModeText)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(text)
		default:
			if err := runRemoteQuery(c, string(dialect), line, fetchSize, scanner); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

// dialectNames lists the locally registered dialects.
func dialectNames() []string {
	ds := aqualogic.Dialects()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = string(d)
	}
	return names
}

// lookupDialect resolves a dialect name against the local registry
// ("" = sql).
func lookupDialect(name string) (aqualogic.Dialect, bool) {
	if name == "" {
		return aqualogic.DialectSQL, true
	}
	for _, d := range aqualogic.Dialects() {
		if string(d) == name {
			return d, true
		}
	}
	return "", false
}

func statsCtx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = cancel // bounded by the timeout; the verb returns long before
	return ctx
}

// renderRemoteResilience is the wire-mode \r: the server's overload
// posture (weighted admission, queue, sheds by reason, brownout level,
// idempotent replays) next to this client's own defenses.
func renderRemoteResilience(c *remoteclient.Client) {
	resp, err := c.ServerStats(statsCtx())
	if err != nil {
		fmt.Println("error:", err)
		fmt.Printf("client breaker: %s\n", c.BreakerState())
		return
	}
	s := resp.Server
	fmt.Printf("server admission: weighted in-flight %d/%d (peak %d), queue depth %d (peak %d)\n",
		s.WeightedInFlight, s.WeightedCapacity, s.WeightedPeak, s.QueueDepth, s.QueuePeak)
	fmt.Printf("server shed: queue-full=%d queue-timeout=%d brownout=%d (level %d)\n",
		s.ShedQueueFull, s.ShedQueueTimeout, s.ShedBrownout, s.BrownoutLevel)
	fmt.Printf("server replays: execute=%d fetch=%d; sessions open=%d cursors open=%d\n",
		s.ExecReplays, s.FetchReplays, s.SessionsOpen, s.CursorsOpen)
	resp.Pipeline.RenderResilience(os.Stdout)
	fmt.Printf("client breaker: %s\n", c.BreakerState())
}

// runRemoteQuery streams a remote result set to the terminal, paging
// when asked; abandoning a page closes the cursor, which cancels the
// rest of the evaluation server-side.
func runRemoteQuery(c *remoteclient.Client, dialect, query string, pageSize int, in *bufio.Scanner) error {
	rows, err := c.QueryDialect(context.Background(), dialect, aqualogic.ModeText, query)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols := rows.Columns()
	labels := make([]string, len(cols))
	for i, col := range cols {
		labels[i] = col.Label
	}
	fmt.Println(strings.Join(labels, " | "))
	n := 0
	for rows.Next() {
		rec := make([]string, len(cols))
		for i := range cols {
			s, ok, err := rows.String(i)
			switch {
			case err != nil:
				return err
			case !ok:
				rec[i] = "NULL"
			default:
				rec[i] = s
			}
		}
		fmt.Println(strings.Join(rec, " | "))
		n++
		if pageSize > 0 && n%pageSize == 0 {
			fmt.Printf("-- %d row(s) so far; Enter for next %d, q to stop -- ", n, pageSize)
			if !in.Scan() || strings.EqualFold(strings.TrimSpace(in.Text()), "q") {
				fmt.Printf("(%d row(s), rest of the query cancelled)\n", n)
				rows.Close()
				return nil
			}
		}
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d row(s))\n", n)
	return nil
}

func runQuery(db *sql.DB, query string) error {
	rows, err := db.Query(query)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return err
	}

	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	var table [][]string
	for rows.Next() {
		raw := make([]any, len(cols))
		for i := range raw {
			raw[i] = new(sql.NullString)
		}
		if err := rows.Scan(raw...); err != nil {
			return err
		}
		rec := make([]string, len(cols))
		for i := range raw {
			ns := raw[i].(*sql.NullString)
			if ns.Valid {
				rec[i] = ns.String
			} else {
				rec[i] = "NULL"
			}
			if len(rec[i]) > widths[i] {
				widths[i] = len(rec[i])
			}
		}
		table = append(table, rec)
	}
	if err := rows.Err(); err != nil {
		return err
	}

	printRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[i], v)
		}
		fmt.Println()
	}
	printRow(cols)
	for i, w := range widths {
		if i > 0 {
			fmt.Print("-+-")
		}
		fmt.Print(strings.Repeat("-", w))
	}
	fmt.Println()
	for _, rec := range table {
		printRow(rec)
	}
	fmt.Printf("(%d row(s))\n", len(table))
	return nil
}
