// Command xqrun compiles and executes XQuery text against the demo
// deployment's data service functions — the engine's standalone face, the
// way the paper's DSP server consumes the driver's generated queries.
//
// Usage:
//
//	xqrun 'for $c in ns0:CUSTOMERS() return fn:data($c/CUSTOMERNAME)'
//	sql2xq "SELECT * FROM CUSTOMERS" | xqrun
//
// Queries reference data services through schema imports; for convenience,
// the prefixes ns0–ns3 are pre-bound to the demo namespaces when the query
// has no prolog of its own (ns0=CUSTOMERS, ns1=PAYMENTS, ns2=PO_CUSTOMERS,
// ns3=PO_ITEMS).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/demo"
	"repro/internal/obsv"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

func main() {
	stats := flag.Bool("stats", false, "print evaluation stats (wall time, evaluator steps, result size) to stderr")
	flag.Parse()
	var src string
	if flag.NArg() > 0 {
		src = strings.Join(flag.Args(), " ")
	} else {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	if strings.TrimSpace(src) == "" {
		fatal(fmt.Errorf("no XQuery given (pass as argument or on stdin)"))
	}

	q, err := xquery.Parse(src)
	if err != nil {
		fatal(err)
	}
	if len(q.Prolog.SchemaImports) == 0 {
		q.Prolog.SchemaImports = []xquery.SchemaImport{
			{Prefix: "ns0", Namespace: "ld:TestDataServices/CUSTOMERS", Location: "ld:TestDataServices/schemas/CUSTOMERS.xsd"},
			{Prefix: "ns1", Namespace: "ld:TestDataServices/PAYMENTS", Location: "ld:TestDataServices/schemas/PAYMENTS.xsd"},
			{Prefix: "ns2", Namespace: "ld:TestDataServices/PO_CUSTOMERS", Location: "ld:TestDataServices/schemas/PO_CUSTOMERS.xsd"},
			{Prefix: "ns3", Namespace: "ld:TestDataServices/PO_ITEMS", Location: "ld:TestDataServices/schemas/PO_ITEMS.xsd"},
		}
	}

	_, _, engine := demo.Setup(demo.DefaultSizes)
	if err := engine.Check(q, nil); err != nil {
		fatal(err)
	}
	tr := obsv.NewTrace(src)
	out, err := engine.EvalWithTrace(context.Background(), q, nil, tr)
	if err != nil {
		fatal(err)
	}
	if *stats {
		if ev, ok := tr.Stage(obsv.StageEvaluate); ok {
			fmt.Fprintf(os.Stderr, "evaluate: %s, steps=%d, items=%d\n",
				ev.Duration, ev.DetailValue("steps"), ev.OutSize)
		}
	}
	for _, it := range out {
		switch v := it.(type) {
		case *xdm.Element:
			fmt.Print(xdm.MarshalIndent(v))
		default:
			fmt.Println(xdm.StringValue(it))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xqrun:", err)
	os.Exit(1)
}
