// Federated mediation differentials: a multi-source platform (central
// accounts, a billing backend, an XML-file backend, and a horizontally
// partitioned ORDERS table whose shards live on different sources) must
// answer every query byte-identically to a single-source oracle serving
// the same rows — across both result modes, serial and parallel
// execution, with partition pruning and per-shard pushdown active.
package aqualogic

import (
	"context"
	"database/sql"
	"strconv"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/obsv"
	"repro/internal/translator"
	"repro/internal/xdm"
)

// federatedPlatform assembles the multi-source deployment from the demo
// fixture: the central App plus the billing and files backends.
func federatedPlatform(t testing.TB, sz demo.FederatedSizes, partial bool) *Platform {
	t.Helper()
	fx := demo.FederatedSetup(sz, partial)
	p := New(fx.App, fx.Engine)
	for _, b := range fx.Extra {
		if err := p.AddSource(b.Name, b.Source); err != nil {
			t.Fatalf("AddSource(%s): %v", b.Name, err)
		}
	}
	return p
}

// oraclePlatform is the single-source twin serving identical rows.
func oraclePlatform(sz demo.FederatedSizes) *Platform {
	app, engine := demo.OracleSetup(sz)
	return New(app, engine)
}

// federatedCorpus exercises every federated shape: single-backend scans,
// cross-source joins, full scatter-gather over the partitioned table,
// shard-key pinning (constant and parameterized), ordered merges,
// aggregation over scattered rows, and set operations across sources.
func federatedCorpus() []string {
	return []string{
		"SELECT ACCOUNTID, NAME FROM ACCOUNTS",
		"SELECT AMOUNT, STATUS FROM INVOICES WHERE AMOUNT > 100",
		"SELECT REGION, COUNTRY FROM REGIONS ORDER BY REGION",
		"SELECT * FROM ORDERS",
		"SELECT ORDERID, ITEM FROM ORDERS ORDER BY ORDERID",
		"SELECT ORDERID, QTY FROM ORDERS WHERE ACCOUNTID = 105",
		"SELECT ORDERID FROM ORDERS WHERE ACCOUNTID = ? ORDER BY ORDERID",
		"SELECT ITEM, SUM(QTY) FROM ORDERS GROUP BY ITEM",
		"SELECT A.NAME, O.ITEM FROM ACCOUNTS A, ORDERS O WHERE A.ACCOUNTID = O.ACCOUNTID ORDER BY O.ORDERID",
		"SELECT A.NAME, I.AMOUNT FROM ACCOUNTS A, INVOICES I WHERE A.ACCOUNTID = I.ACCOUNTID",
		"SELECT A.REGION, R.COUNTRY FROM ACCOUNTS A LEFT OUTER JOIN REGIONS R ON A.REGION = R.REGION",
		"SELECT ACCOUNTID FROM ORDERS UNION SELECT ACCOUNTID FROM INVOICES",
		"SELECT NAME FROM ACCOUNTS WHERE ACCOUNTID IN (SELECT ACCOUNTID FROM ORDERS WHERE QTY > 10)",
		"SELECT COUNT(*) FROM ORDERS WHERE ACCOUNTID = 106",
	}
}

// federatedBindings binds integer parameters to an in-range account id.
func federatedBindings(res *translator.Result) map[string]xdm.Sequence {
	if res.ParamCount == 0 {
		return nil
	}
	ext := make(map[string]xdm.Sequence, res.ParamCount)
	for i := 0; i < res.ParamCount; i++ {
		var v xdm.Atomic
		switch res.ParamTypes[i] {
		case catalog.SQLInteger, catalog.SQLSmallint, catalog.SQLDecimal, catalog.SQLDouble:
			v = xdm.Integer(107)
		default:
			v = xdm.String("NA")
		}
		ext["p"+strconv.Itoa(i+1)] = xdm.SequenceOf(v)
	}
	return ext
}

// TestFederatedMatchesSingleSource holds federated execution byte-identical
// to the single-source oracle across both result modes and worker counts,
// and proves the scattered path actually ran.
func TestFederatedMatchesSingleSource(t *testing.T) {
	fed := federatedPlatform(t, demo.DefaultFederatedSizes, false)
	ora := oraclePlatform(demo.DefaultFederatedSizes)

	before := obsv.Global.Snapshot()
	for _, workers := range []int{1, 8} {
		fed.ConfigureExec(ExecConfig{Workers: workers})
		for _, mode := range []ResultMode{ModeXML, ModeText} {
			for _, q := range federatedCorpus() {
				fcq, err := fed.Compile(q, mode)
				if err != nil {
					t.Fatalf("workers=%d mode=%v: federated compile %q: %v", workers, mode, q, err)
				}
				ocq, err := ora.Compile(q, mode)
				if err != nil {
					t.Fatalf("workers=%d mode=%v: oracle compile %q: %v", workers, mode, q, err)
				}
				ext := federatedBindings(fcq.Res)
				got, err := fed.Engine.EvalPlanWithTrace(context.Background(), fcq.Plan, ext, nil)
				if err != nil {
					t.Fatalf("workers=%d mode=%v: federated eval %q: %v", workers, mode, q, err)
				}
				want, err := ora.Engine.EvalPlanWithTrace(context.Background(), ocq.Plan, ext, nil)
				if err != nil {
					t.Fatalf("workers=%d mode=%v: oracle eval %q: %v", workers, mode, q, err)
				}
				if g, w := xdm.MarshalSequence(got), xdm.MarshalSequence(want); g != w {
					t.Fatalf("workers=%d mode=%v: %q diverged\nfederated: %s\noracle:    %s", workers, mode, q, g, w)
				}
			}
		}
	}
	after := obsv.Global.Snapshot()
	if after.FederatedScans <= before.FederatedScans {
		t.Fatalf("no federated scatter-gather ran (scans %d -> %d)", before.FederatedScans, after.FederatedScans)
	}
	if after.ShardsPruned <= before.ShardsPruned {
		t.Fatalf("no partition pruning happened (pruned %d -> %d)", before.ShardsPruned, after.ShardsPruned)
	}
}

// TestFederatedPushdownToggleMatches re-runs the corpus with pushdown
// disabled (the benchmark's control arm): still byte-identical, no pruning.
func TestFederatedPushdownToggleMatches(t *testing.T) {
	fed := federatedPlatform(t, demo.DefaultFederatedSizes, false)
	ora := oraclePlatform(demo.DefaultFederatedSizes)
	fed.ConfigureExec(ExecConfig{Workers: 4, DisablePartitionPushdown: true})

	before := obsv.Global.Snapshot()
	for _, q := range federatedCorpus() {
		fcq, err := fed.Compile(q, ModeXML)
		if err != nil {
			t.Fatalf("compile %q: %v", q, err)
		}
		ocq, _ := ora.Compile(q, ModeXML)
		ext := federatedBindings(fcq.Res)
		got, err := fed.Engine.EvalPlanWithTrace(context.Background(), fcq.Plan, ext, nil)
		if err != nil {
			t.Fatalf("federated eval %q: %v", q, err)
		}
		want, err := ora.Engine.EvalPlanWithTrace(context.Background(), ocq.Plan, ext, nil)
		if err != nil {
			t.Fatalf("oracle eval %q: %v", q, err)
		}
		if g, w := xdm.MarshalSequence(got), xdm.MarshalSequence(want); g != w {
			t.Fatalf("%q diverged with pushdown disabled\nfederated: %s\noracle:    %s", q, g, w)
		}
	}
	after := obsv.Global.Snapshot()
	if after.ShardsPruned != before.ShardsPruned {
		t.Fatalf("pruning ran despite DisablePartitionPushdown (%d -> %d)", before.ShardsPruned, after.ShardsPruned)
	}
}

// TestFederatedSmoke is the quick ci gate: the federation resolves, prunes,
// streams, attributes scans per source, and EXPLAIN names the backends.
func TestFederatedSmoke(t *testing.T) {
	p := federatedPlatform(t, demo.DefaultFederatedSizes, false)

	rows, err := p.Query("SELECT ORDERID, ITEM FROM ORDERS WHERE ACCOUNTID = ? ORDER BY ORDERID", 103)
	if err != nil {
		t.Fatalf("pinned query: %v", err)
	}
	if err := rows.Materialize(); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if rows.Len() == 0 {
		t.Fatalf("pinned query returned no rows")
	}

	// Cross-source join through the driver, plus EXPLAIN's source line.
	p.RegisterDriver("federated-smoke")
	db, err := sql.Open("aqualogic", "federated-smoke")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	var n int
	if err := db.QueryRow("SELECT COUNT(*) FROM ACCOUNTS A, INVOICES I WHERE A.ACCOUNTID = I.ACCOUNTID").Scan(&n); err != nil {
		t.Fatalf("cross-source join: %v", err)
	}
	if n == 0 {
		t.Fatalf("cross-source join matched no rows")
	}
	var explain []string
	er, err := db.Query("EXPLAIN SELECT A.NAME, I.AMOUNT FROM ACCOUNTS A, INVOICES I WHERE A.ACCOUNTID = I.ACCOUNTID")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	for er.Next() {
		var line string
		if err := er.Scan(&line); err != nil {
			t.Fatalf("scan: %v", err)
		}
		explain = append(explain, line)
	}
	er.Close()
	joined := strings.Join(explain, "\n")
	if !strings.Contains(joined, "-- sources: TestApp, billing") {
		t.Fatalf("EXPLAIN missing source attribution:\n%s", joined)
	}

	if got := p.SourceNames(); len(got) != 3 || got[0] != "TestApp" || got[1] != "billing" || got[2] != "files" {
		t.Fatalf("SourceNames = %v", got)
	}
	health := p.FederationStats()
	if len(health) != 3 {
		t.Fatalf("FederationStats reported %d sources", len(health))
	}
	if s := obsv.Global.Snapshot(); len(s.SourceScans) == 0 {
		t.Fatalf("no per-source scan attribution recorded")
	}
}

// TestFederatedAmbiguity pins the cross-source collision contract: RATES
// exists in billing and files, so the unqualified name names both sources
// in a typed error, while a source-qualified reference resolves.
func TestFederatedAmbiguity(t *testing.T) {
	p := federatedPlatform(t, demo.DefaultFederatedSizes, false)

	_, err := p.Compile("SELECT * FROM RATES", ModeXML)
	if err == nil {
		t.Fatalf("unqualified RATES must be ambiguous")
	}
	if !strings.Contains(err.Error(), "ambiguous across sources billing, files") {
		t.Fatalf("ambiguity must name the sources, got: %v", err)
	}

	cq, err := p.Compile("SELECT CURRENCY FROM billing.RATES.RATES ORDER BY CURRENCY", ModeXML)
	if err != nil {
		t.Fatalf("source-qualified RATES must resolve: %v", err)
	}
	if len(cq.Res.Sources) != 1 || cq.Res.Sources[0] != "billing" {
		t.Fatalf("qualified lookup attributed to %v", cq.Res.Sources)
	}

	// Listings name each table's source, deterministically ordered by
	// backend registration then schema/table.
	tables, err := p.Metadata().Tables()
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	var order []string
	for _, tm := range tables {
		if tm.Source == "" {
			t.Fatalf("table %s missing source attribution", tm.Function.Name)
		}
		order = append(order, tm.Source+":"+tm.Function.Name)
	}
	want := []string{
		"TestApp:ACCOUNTS", "TestApp:ORDERS",
		"billing:INVOICES", "billing:RATES",
		"files:RATES", "files:REGIONS",
	}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Fatalf("listing order = %v, want %v", order, want)
	}
}

// TestFederatedCacheIsolation proves one backend's invalidation retires
// only the compiled artifacts that touched it.
func TestFederatedCacheIsolation(t *testing.T) {
	p := federatedPlatform(t, demo.DefaultFederatedSizes, false)

	ordersQ := "SELECT ORDERID FROM ORDERS WHERE QTY > 5"
	invoicesQ := "SELECT INVOICEID FROM INVOICES WHERE AMOUNT > 50"
	for _, q := range []string{ordersQ, invoicesQ} {
		if _, err := p.Compile(q, ModeXML); err != nil {
			t.Fatalf("compile %q: %v", q, err)
		}
	}

	p.InvalidateSourceMetadata("billing")

	base := p.CompileStats()
	if _, err := p.Compile(ordersQ, ModeXML); err != nil {
		t.Fatalf("recompile %q: %v", ordersQ, err)
	}
	s := p.CompileStats()
	if s.Hits != base.Hits+1 {
		t.Fatalf("central-only artifact churned by billing invalidation: %+v -> %+v", base, s)
	}
	if _, err := p.Compile(invoicesQ, ModeXML); err != nil {
		t.Fatalf("recompile %q: %v", invoicesQ, err)
	}
	s = p.CompileStats()
	if s.SourceRetirements != base.SourceRetirements+1 || s.Misses != base.Misses+1 {
		t.Fatalf("billing artifact must retire and recompile: %+v -> %+v", base, s)
	}
}

// TestFederatedPartitionPruning asserts the shard-pinned path calls only
// the shard the key can live on.
func TestFederatedPartitionPruning(t *testing.T) {
	p := federatedPlatform(t, demo.DefaultFederatedSizes, false)
	shards := len(demo.FederatedSetup(demo.DefaultFederatedSizes, false).Spec.Shards)

	cq, err := p.Compile("SELECT ORDERID FROM ORDERS WHERE ACCOUNTID = 104", ModeXML)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	before := obsv.Global.Snapshot()
	if _, err := p.Engine.EvalPlanWithTrace(context.Background(), cq.Plan, nil, nil); err != nil {
		t.Fatalf("eval: %v", err)
	}
	after := obsv.Global.Snapshot()
	if got := after.ShardScans - before.ShardScans; got != 1 {
		t.Fatalf("pinned query called %d shards, want 1", got)
	}
	if got := after.ShardsPruned - before.ShardsPruned; got != int64(shards-1) {
		t.Fatalf("pruned %d shards, want %d", got, shards-1)
	}
}

// FuzzFederatedDifferential fuzzes SQL against both deployments: any
// statement both accept and both evaluate cleanly must produce identical
// bytes in both result modes.
func FuzzFederatedDifferential(f *testing.F) {
	for _, s := range federatedCorpus() {
		f.Add(s)
	}
	sz := demo.FederatedSizes{Accounts: 8, Invoices: 12, Orders: 20, Shards: 3}
	fed := federatedPlatform(f, sz, false)
	fed.ConfigureExec(ExecConfig{Workers: 8})
	ora := oraclePlatform(sz)

	f.Fuzz(func(t *testing.T, sqlText string) {
		for _, mode := range []ResultMode{ModeXML, ModeText} {
			fcq, ferr := fed.Compile(sqlText, mode)
			ocq, oerr := ora.Compile(sqlText, mode)
			if ferr != nil || oerr != nil {
				// Resolution can legitimately differ (RATES is ambiguous only
				// in the federation); value divergence on doubly-accepted
				// statements is what this fuzzer hunts.
				continue
			}
			if strings.Contains(fcq.XQuery(), "fn:current-") {
				continue // nondeterministic between evaluations
			}
			ext := federatedBindings(fcq.Res)
			got, gerr := fed.Engine.EvalPlanWithTrace(context.Background(), fcq.Plan, ext, nil)
			want, werr := ora.Engine.EvalPlanWithTrace(context.Background(), ocq.Plan, ext, nil)
			if gerr != nil || werr != nil {
				// Dynamic error timing is not part of the contract (XQuery
				// §2.3.4): pruning may skip a shard whose rows would have
				// raised a comparison error.
				continue
			}
			if g, w := xdm.MarshalSequence(got), xdm.MarshalSequence(want); g != w {
				t.Fatalf("mode %v: %q diverged\nfederated: %s\noracle:    %s", mode, sqlText, g, w)
			}
		}
	})
}
