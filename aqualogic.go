// Package aqualogic is a from-scratch reproduction of the system described
// in "SQL to XQuery Translation in the AquaLogic Data Services Platform"
// (ICDE 2006): a SQL-92 SELECT → XQuery translator, the JDBC-style driver
// built around it, and the substrates it needs — an XQuery data model and
// evaluator standing in for the AquaLogic DSP server, and a catalog of data
// service metadata standing in for the platform's remote metadata API.
//
// The package is a facade over the internal packages:
//
//	internal/qfront     frontend-neutral typed query AST + Frontend seam
//	internal/sqlparser  SQL-92 SELECT lexer/parser (translation stage one)
//	internal/pathfront  path-template front end over the same AST
//	internal/translator three-stage translation kernel (the paper's
//	                    core contribution: contexts, resultset nodes,
//	                    typed generation, §4 result wrappers)
//	internal/catalog    application/data-service metadata + cache
//	internal/xquery     generated-XQuery AST and serializer
//	internal/xqeval     XQuery engine executing generated queries
//	internal/resultset  XML and text-mode result decoding
//	internal/driver     database/sql driver ("the JDBC driver")
//
// Quick start:
//
//	p := aqualogic.Demo()
//	rows, err := p.Query("SELECT CUSTOMERNAME, CITY FROM CUSTOMERS WHERE CUSTOMERID < ?", 1010)
//
// or through database/sql:
//
//	aqualogic.Demo().RegisterDriver("demo")
//	db, err := sql.Open("aqualogic", "demo")
package aqualogic

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/aqerr"
	"repro/internal/catalog"
	"repro/internal/demo"
	"repro/internal/driver"
	"repro/internal/faultnet"
	"repro/internal/obsv"
	_ "repro/internal/pathfront" // register the path-template dialect
	"repro/internal/qcache"
	"repro/internal/qfront"
	"repro/internal/resilient"
	"repro/internal/resultset"
	"repro/internal/translator"
	"repro/internal/xdm"
	"repro/internal/xqeval"
)

// Dialect names a registered query language front end. Every query-text
// entry point has a *Dialect variant; the plain methods fix the dialect
// to SQL-92, the platform's historical (and wire-default) surface.
type Dialect = qfront.Dialect

// Built-in dialects: the SQL-92 front end (internal/sqlparser) and the
// path-template front end (internal/pathfront).
const (
	DialectSQL  = qfront.DialectSQL
	DialectPath = qfront.DialectPath
)

// Dialects lists the registered query dialects.
func Dialects() []Dialect { return qfront.Dialects() }

// Re-exported core types, so library users need only this package for the
// common paths.
type (
	// Application is DSP application metadata: the SQL catalog.
	Application = catalog.Application
	// DSFile is one data service (.ds) file: the SQL schema.
	DSFile = catalog.DSFile
	// Function is a data service function: a SQL table (parameterless)
	// or stored procedure (parameterized).
	Function = catalog.Function
	// Column is one column of a function's flat row type.
	Column = catalog.Column
	// Parameter is a formal parameter of a parameterized function.
	Parameter = catalog.Parameter
	// Engine is the XQuery engine data service functions register with.
	Engine = xqeval.Engine
	// Translation is a completed SQL→XQuery translation.
	Translation = translator.Result
	// ResultColumn describes one output column of a translation.
	ResultColumn = translator.ResultColumn
	// Rows is a decoded, scrollable result set.
	Rows = resultset.Rows
	// Element is a row element of the XML data model (for implementing
	// custom data service functions).
	Element = xdm.Element
	// Sequence is an XQuery value sequence.
	Sequence = xdm.Sequence
	// Trace is a per-query stage trace (lex → … → evaluate) recorded by
	// the observability layer.
	Trace = obsv.Trace
	// StageEvent is one completed stage record; install a hook on a Trace
	// to stream them.
	StageEvent = obsv.StageEvent
	// PipelineStats is a snapshot of pipeline metrics (counters plus
	// per-stage timing aggregates).
	PipelineStats = obsv.Snapshot
	// ConnStats is the per-connection snapshot the driver exposes through
	// database/sql's Conn.Raw (see driver.StatsReporter).
	ConnStats = driver.ConnStats
	// QueryPlan is the evaluator's optimized execution plan for a
	// translation: hash equi-joins, pushed predicates, hoisted invariants.
	QueryPlan = xqeval.Plan
	// CompiledQuery is the compiled-query artifact: the completed
	// translation, the evaluator's plan (checked and built straight from
	// the generated AST — no serialize→reparse round trip), and the
	// compile-time stage trace. Compile returns it; the shared compile
	// cache stores it.
	CompiledQuery = qcache.CompiledQuery
	// CompileCacheStats snapshots the shared compile cache's counters
	// (hits, misses, single-flight shares, evictions, invalidations, size,
	// current metadata generation).
	CompileCacheStats = qcache.Stats
	// QueryError is the typed error the resilience layer raises: every
	// failure carries a Kind (transient, permanent, unavailable, timeout,
	// resource limit, internal) the caller can switch on with errors.As.
	QueryError = aqerr.QueryError
	// ErrorKind classifies a QueryError.
	ErrorKind = aqerr.Kind
	// ResilienceConfig is the knob set EnableResilience applies: retries,
	// circuit breakers, metadata staleness, result-size caps, and the
	// default statement timeout.
	ResilienceConfig = resilient.Config
	// FaultConfig parameterizes the fault-injection net EnableFaults
	// installs (seed, rate, fault kinds).
	FaultConfig = faultnet.Config
	// FaultInjector is the installed chaos layer; its Report lists every
	// registered fault point with per-kind injection counts.
	FaultInjector = faultnet.Injector
	// FaultKind is one injectable fault class.
	FaultKind = faultnet.Kind
	// EvalLimits caps evaluator resources (rows, tuples, recursion depth).
	EvalLimits = xqeval.Limits
	// ExecConfig configures the evaluator's morsel-style parallel
	// execution (worker count, morsel size, minimum scan size); install it
	// with Platform.ConfigureExec.
	ExecConfig = xqeval.ExecConfig
	// SourceStats is one data service's collected statistics (row count,
	// per-column distinct estimates, average row width) — the cost model's
	// input, populated lazily on first scan or eagerly by AnalyzeStats.
	SourceStats = xqeval.SourceStats
	// Federation is the multi-backend catalog AddSource builds: named
	// metadata sources resolved together, each behind its own cache and
	// generation.
	Federation = catalog.Federation
	// PartitionSpec declares a horizontally partitioned data service:
	// shard functions (possibly on different sources), the shard key, and
	// an optional shard-routing function enabling partition pruning.
	PartitionSpec = xqeval.PartitionSpec
	// ShardSpec names one shard of a partitioned data service.
	ShardSpec = xqeval.ShardSpec
	// Atomic is an XQuery atomic value — what PartitionSpec.ShardFor
	// routes on (compare with its Lexical form or a typed accessor).
	Atomic = xdm.Atomic
	// BreakerState is a circuit breaker's position (closed, open,
	// half-open); FederationStats reports one per data service breaker.
	BreakerState = resilient.BreakerState
)

// Error kinds a QueryError can carry.
const (
	ErrTransient     = aqerr.KindTransient
	ErrPermanent     = aqerr.KindPermanent
	ErrUnavailable   = aqerr.KindUnavailable
	ErrTimeout       = aqerr.KindTimeout
	ErrResourceLimit = aqerr.KindResourceLimit
	ErrInternal      = aqerr.KindInternal
)

// Injectable fault kinds for FaultConfig.Kinds.
const (
	FaultTransient = faultnet.KindTransient
	FaultPermanent = faultnet.KindPermanent
	FaultLatency   = faultnet.KindLatency
	FaultStall     = faultnet.KindStall
	FaultTruncate  = faultnet.KindTruncate
	FaultPanic     = faultnet.KindPanic
)

// SQL column types for building catalogs.
const (
	SQLInteger   = catalog.SQLInteger
	SQLSmallint  = catalog.SQLSmallint
	SQLDecimal   = catalog.SQLDecimal
	SQLDouble    = catalog.SQLDouble
	SQLVarchar   = catalog.SQLVarchar
	SQLChar      = catalog.SQLChar
	SQLBoolean   = catalog.SQLBoolean
	SQLDate      = catalog.SQLDate
	SQLTime      = catalog.SQLTime
	SQLTimestamp = catalog.SQLTimestamp
)

// ResultMode selects §4 result handling.
type ResultMode = translator.ResultMode

// Result modes.
const (
	ModeXML  = translator.ModeXML
	ModeText = translator.ModeText
)

// NewEngine creates an empty XQuery engine.
func NewEngine() *Engine { return xqeval.New() }

// NewRelationalImport builds the function metadata a DSP relational import
// would produce for a table (paper Example 2).
func NewRelationalImport(path, name string, cols []Column) *Function {
	return catalog.NewRelationalImport(path, name, cols)
}

// Platform bundles an application's metadata with the engine serving its
// data: one AquaLogic-DSP-shaped deployment.
type Platform struct {
	App    *Application
	Engine *Engine

	// MetadataLatency, when set, simulates the round trip of the remote
	// metadata API on every uncached lookup.
	MetadataLatency time.Duration

	cacheMu    sync.Mutex
	cache      *catalog.Cache
	qc         *qcache.Cache
	resilience *resilient.Config
	injector   *faultnet.Injector
	guard      *resilient.EngineGuard

	// sources are the extra federation backends added with AddSource; when
	// non-empty the metadata stack is a catalog.Federation with the App as
	// its first backend (named App.Name), each behind its own cache.
	sources []namedSource
	fed     *catalog.Federation
}

// namedSource is one federation backend registered with AddSource.
type namedSource struct {
	name string
	src  catalog.Source
}

// New creates a platform over application metadata and an engine.
func New(app *Application, engine *Engine) *Platform {
	return &Platform{App: app, Engine: engine}
}

// Demo builds the paper's example application (CUSTOMERS, PAYMENTS,
// PO_CUSTOMERS, PO_ITEMS plus the getCustomerById procedure) with the
// default synthetic dataset.
func Demo() *Platform {
	app, _, engine := demo.Setup(demo.DefaultSizes)
	return New(app, engine)
}

// EnableFaults installs the fault-injection net: the metadata source and
// every data service call become registered fault points that misbehave
// (transient/permanent errors, latency, stalls, truncation, panics) on the
// injector's deterministic seeded schedule. Call it during setup, before
// EnableResilience, so the defenses wrap the faults the way they would
// wrap a real flaky network. The returned injector's Report lists every
// fault point with per-kind injection counts.
func (p *Platform) EnableFaults(cfg FaultConfig) *FaultInjector {
	inj := faultnet.New(cfg)
	p.cacheMu.Lock()
	p.injector = inj
	p.cache = nil // rebuild the metadata stack with the chaos layer inside
	p.fed = nil
	p.qc = nil // artifacts compiled over the old stack are stale
	p.cacheMu.Unlock()
	p.Engine.InvalidateSourceStats() // sources now misbehave; observations are stale
	p.Engine.Use(inj.Middleware())
	return inj
}

// EnableResilience arms the platform's defenses: retries with backoff
// around metadata lookups and data service calls, a circuit breaker per
// data service, panic containment, stale-while-revalidate metadata
// serving (StaleTTL), evaluator resource caps (MaxRows), and a default
// statement deadline (QueryTimeout) for the driver. Call it during setup,
// after any EnableFaults.
func (p *Platform) EnableResilience(cfg ResilienceConfig) {
	cfg = cfg.WithDefaults()
	guard := resilient.NewEngineGuard(cfg)
	p.cacheMu.Lock()
	p.resilience = &cfg
	p.guard = guard
	p.cache = nil // rebuild the metadata stack with retries + staleness
	p.fed = nil
	p.qc = nil // rebuild the compile cache with CompileCacheEntries applied
	p.cacheMu.Unlock()
	p.Engine.InvalidateSourceStats() // the rebuilt stack may change what scans observe
	p.Engine.Use(guard.Middleware())
	if cfg.MaxRows > 0 {
		lim := p.Engine.Limits()
		lim.MaxRows = cfg.MaxRows
		p.Engine.SetLimits(lim)
	}
}

// ConfigureExec installs the evaluator's parallel-execution settings:
// Workers caps the per-query morsel worker pool (0 = GOMAXPROCS, 1 =
// serial), MorselSize the scan partition size, MinParallelItems the
// smallest scan worth fanning out. Serial and parallel execution are
// byte-identical; the knob trades coordination overhead for scan/join
// throughput.
func (p *Platform) ConfigureExec(cfg ExecConfig) {
	p.Engine.SetExec(cfg)
}

// AnalyzeStats eagerly collects source statistics for every table-shaped
// data service in the catalog — the explicit ANALYZE counterpart to the
// lazy collection that happens on first scan. Statistics feed the
// planner's cost model (EXPLAIN's cost annotations, hash-key selection);
// collecting them advances the statistics generation, which retires
// compiled artifacts costed against older numbers. Returns the number of
// sources analyzed; a failing source is skipped and reported in err after
// the rest have been attempted.
func (p *Platform) AnalyzeStats(ctx context.Context) (int, error) {
	tables, err := p.metaSource().Tables()
	if err != nil {
		return 0, err
	}
	analyzed := 0
	var firstErr error
	for _, tm := range tables {
		if tm.Function == nil || !tm.Function.IsTable() {
			continue
		}
		if _, err := p.Engine.CollectSourceStats(ctx, tm.Function.Namespace, tm.Function.Name); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("aqualogic: analyze %s: %w", tm.Function.Name, err)
			}
			continue
		}
		analyzed++
	}
	return analyzed, firstErr
}

// AddSource registers an extra federation backend under a name: its
// tables and procedures become resolvable alongside the App's, behind
// the backend's own metadata cache and generation. The first AddSource
// turns the platform's metadata stack into a catalog.Federation with the
// App as its first backend (named App.Name); unqualified table names
// resolve across every backend (colliding names raise a typed
// AmbiguousError listing the sources), and a source-qualified name
// (`billing.INVOICES`) pins resolution to one backend without touching
// the others. Call during setup; adding a source rebuilds the metadata
// stack and retires compiled artifacts.
func (p *Platform) AddSource(name string, src catalog.Source) error {
	if name == "" || src == nil {
		return fmt.Errorf("aqualogic: AddSource requires a name and a source")
	}
	p.cacheMu.Lock()
	if strings.EqualFold(name, p.App.Name) {
		p.cacheMu.Unlock()
		return fmt.Errorf("aqualogic: source %s collides with the application name", name)
	}
	for _, ns := range p.sources {
		if strings.EqualFold(ns.name, name) {
			p.cacheMu.Unlock()
			return fmt.Errorf("aqualogic: source %s already registered", name)
		}
	}
	p.sources = append(p.sources, namedSource{name: name, src: src})
	p.fed = nil // rebuild the federation with the new backend
	p.cache = nil
	p.qc = nil
	p.cacheMu.Unlock()
	p.Engine.InvalidateSourceStats() // new names may shadow observed sources
	return nil
}

// SourceNames lists the federation's backends in registration order (the
// App first). A platform with no added sources reports just the App.
func (p *Platform) SourceNames() []string {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	out := []string{p.App.Name}
	for _, ns := range p.sources {
		out = append(out, ns.name)
	}
	return out
}

// InvalidateSourceMetadata drops one backend's cached metadata and
// advances that backend's generation, retiring only the compiled
// artifacts whose statements touched it — the other backends' caches and
// artifacts stay warm. Outside a federation it flushes the single
// metadata cache.
func (p *Platform) InvalidateSourceMetadata(name string) {
	if fed := p.federation(); fed != nil {
		fed.InvalidateSource(name)
		return
	}
	if c := p.metaCache(); c != nil {
		c.Invalidate()
	}
}

// metaSource builds the metadata stack, inside out: application
// (→ simulated remote) (→ fault injection) (→ retries) → client-side
// cache with stale-serving. With added sources the stack is a
// Federation instead: each backend gets its own injection/retry stack
// and its own cache, so one backend's faults or invalidations stay its
// own. Lazy construction is guarded so concurrent callers (parallel
// Translate/Query, RegisterDriver) share one cache.
func (p *Platform) metaSource() catalog.Source {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if len(p.sources) > 0 {
		if p.fed == nil {
			fed := catalog.NewFederation(p.App.Name)
			if p.resilience != nil {
				fed.FreshFor = p.resilience.StaleTTL
			}
			var appSrc catalog.Source = p.App
			if p.MetadataLatency > 0 {
				appSrc = &catalog.Remote{Inner: p.App, Latency: p.MetadataLatency}
			}
			fed.Register(p.App.Name, p.backendStackLocked(p.App.Name, appSrc))
			for _, ns := range p.sources {
				fed.Register(ns.name, p.backendStackLocked(ns.name, ns.src))
			}
			p.fed = fed
		}
		return p.fed
	}
	if p.cache == nil {
		var src catalog.Source = p.App
		if p.MetadataLatency > 0 {
			src = &catalog.Remote{Inner: p.App, Latency: p.MetadataLatency}
		}
		if p.injector != nil {
			src = p.injector.Source(src)
		}
		if p.resilience != nil {
			src = resilient.NewSource(src, *p.resilience)
		}
		p.cache = catalog.NewCache(src)
		if p.resilience != nil {
			p.cache.FreshFor = p.resilience.StaleTTL
		}
	}
	return p.cache
}

// backendStackLocked wraps one federation backend in the per-source
// chaos and retry layers (the Federation itself adds the per-source
// cache). Callers hold cacheMu.
func (p *Platform) backendStackLocked(name string, src catalog.Source) catalog.Source {
	if p.injector != nil {
		src = p.injector.SourceNamed(name, src)
	}
	if p.resilience != nil {
		src = resilient.NewSource(src, *p.resilience)
	}
	return src
}

// federation returns the platform's federation, building the metadata
// stack if needed; nil when no sources have been added.
func (p *Platform) federation() *catalog.Federation {
	p.cacheMu.Lock()
	has := len(p.sources) > 0
	fed := p.fed
	p.cacheMu.Unlock()
	if fed == nil && has {
		p.metaSource()
		p.cacheMu.Lock()
		fed = p.fed
		p.cacheMu.Unlock()
	}
	return fed
}

// sourceGeneration is the per-backend epoch the compile cache validates
// hits against: the backend's metadata generation plus its source-scoped
// statistics generation. Both are monotonic, so the sum changes whenever
// either does.
func (p *Platform) sourceGeneration(source string) uint64 {
	var gen uint64
	if fed := p.federation(); fed != nil {
		gen = fed.SourceGeneration(source)
	}
	return gen + p.Engine.SourceStatsGeneration(source)
}

// queryCache lazily builds the platform's shared compiled-query cache,
// keyed on the metadata cache's generation so catalog changes retire
// stale artifacts. The same instance backs Compile/Query on the facade
// and every connection of a registered driver.
func (p *Platform) queryCache() *qcache.Cache {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if p.qc == nil {
		cfg := qcache.Config{Generation: p.metadataGeneration, StatsGeneration: p.Engine.StatsGeneration}
		if len(p.sources) > 0 {
			// Federated: hits additionally revalidate each backend the
			// artifact touched, so one source's invalidation never churns
			// artifacts compiled purely over the others.
			cfg.SourceGeneration = p.sourceGeneration
		}
		if p.resilience != nil {
			cfg.MaxEntries = p.resilience.CompileCacheEntries
		}
		p.qc = qcache.New(cfg)
	}
	return p.qc
}

// metadataGeneration reads the metadata cache's current epoch (building
// the stack if needed). Zero when the source does not version itself.
func (p *Platform) metadataGeneration() uint64 {
	if gs, ok := p.metaSource().(qcache.GenerationSource); ok {
		return gs.Generation()
	}
	return 0
}

// Compile translates, statically checks, and plans a SELECT once,
// returning the compiled-query artifact — the AST handed to the evaluator
// directly, with no serialize→reparse round trip. Artifacts are cached in
// the platform's shared compile cache keyed by (normalized SQL, result
// mode, catalog generation); repeated Compile/Query calls of equivalent
// statements reuse one compilation.
func (p *Platform) Compile(sql string, mode ResultMode) (*CompiledQuery, error) {
	return p.CompileContext(context.Background(), sql, mode)
}

// CompileContext is Compile observing a context during metadata fetches.
func (p *Platform) CompileContext(ctx context.Context, sql string, mode ResultMode) (*CompiledQuery, error) {
	return p.CompileDialect(ctx, DialectSQL, sql, mode)
}

// CompileDialect is CompileContext with an explicit query dialect: the
// text is parsed by the dialect's registered front end, and the artifact
// is cached under (dialect, normalized text, mode, generations) — two
// dialects can never share or clobber an entry, even on identical text.
func (p *Platform) CompileDialect(ctx context.Context, dialect Dialect, text string, mode ResultMode) (*CompiledQuery, error) {
	fe, err := qfront.Lookup(dialect)
	if err != nil {
		return nil, err
	}
	cq, _, err := p.queryCache().Get(ctx, fe, text, mode, func(ctx context.Context, text string) (*qcache.CompiledQuery, error) {
		tr := obsv.NewTrace(text)
		tr.Hook = obsv.Global.ObserveStage
		return qcache.Compile(ctx, p.Translator(mode), p.Engine, fe, text, tr)
	})
	return cq, err
}

// CompileStats reports the shared compile cache's counters. Process-wide
// figures (all platforms) are also in Stats().
func (p *Platform) CompileStats() CompileCacheStats {
	return p.queryCache().Stats()
}

// MetadataSource answers table/procedure metadata lookups — the
// catalog-facing surface the network server re-exports over the wire and
// the remote client implements on the other side.
type MetadataSource = catalog.Source

// Metadata returns the platform's metadata source: the full stack built
// by metaSource (remote simulation, fault injection, retries, client-side
// cache), shared with every translator and driver connection. The network
// server front end (internal/server) serves its metadata endpoints from
// exactly this source, so remote and in-process metadata browsing see the
// same cache, the same staleness behavior, and the same fault points.
func (p *Platform) Metadata() MetadataSource {
	return p.metaSource()
}

// Translator returns a translator over the platform's (cached) metadata.
func (p *Platform) Translator(mode ResultMode) *translator.Translator {
	tr := translator.New(p.metaSource())
	tr.Options.Mode = mode
	tr.Options.DefaultCatalog = p.App.Name
	return tr
}

// Translate converts a SQL-92 SELECT into XQuery, returning the full
// translation (generated query, result schema, parameter info).
func (p *Platform) Translate(sql string, mode ResultMode) (*Translation, error) {
	return p.Translator(mode).Translate(sql)
}

// TranslateDialect is Translate with an explicit query dialect.
func (p *Platform) TranslateDialect(dialect Dialect, text string, mode ResultMode) (*Translation, error) {
	fe, err := qfront.Lookup(dialect)
	if err != nil {
		return nil, err
	}
	return p.Translator(mode).TranslateFrontend(context.Background(), fe, text, nil)
}

// TranslateText is a convenience returning just the XQuery source in XML
// result mode — what `cmd/sql2xq` prints.
func (p *Platform) TranslateText(sql string) (string, error) {
	res, err := p.Translate(sql, ModeXML)
	if err != nil {
		return "", err
	}
	return res.XQuery(), nil
}

// Query translates and executes a SELECT end to end, binding the given
// parameter values to `?` markers. It uses the §4 text-mode path, the
// driver's default. The returned Rows is a thin view over a pull cursor:
// rows decode one Next at a time while the query is still running, and
// Close cancels any remaining evaluation. Call rows.Materialize() — or any
// scroll operation (Len, Reset), which materializes implicitly — for a
// scrollable result; check rows.Err() after iterating, since errors can
// strike mid-stream.
func (p *Platform) Query(sql string, args ...any) (*Rows, error) {
	return p.QueryMode(ModeText, sql, args...)
}

// QueryMode is Query with an explicit result-handling mode. Statements
// compile through the shared compile cache: a repeated query reuses the
// cached plan and skips translation, checking, and planning entirely.
func (p *Platform) QueryMode(mode ResultMode, sql string, args ...any) (*Rows, error) {
	return p.QueryStreamMode(context.Background(), mode, sql, args...)
}

// QueryStream is Query observing a context: cancelling ctx aborts the
// evaluation at the next tuple boundary, surfacing through rows.Err().
func (p *Platform) QueryStream(ctx context.Context, sql string, args ...any) (*Rows, error) {
	return p.QueryStreamMode(ctx, ModeText, sql, args...)
}

// QueryStreamMode is the full streaming entry point: compile (cached), bind
// parameters, start the evaluation, and return a Rows over the row cursor.
// The evaluation runs concurrently with consumption — ORDER BY and GROUP BY
// segments are the only materialization barriers — so the first row is
// available long before the last one is computed, and FETCH FIRST n stops
// the evaluation after n rows. Errors that precede the first row (unknown
// tables, bad parameters, sources failing at open) are returned here
// synchronously; later ones via rows.Err().
func (p *Platform) QueryStreamMode(ctx context.Context, mode ResultMode, sql string, args ...any) (*Rows, error) {
	return p.QueryDialect(ctx, DialectSQL, mode, sql, args...)
}

// QueryDialect is QueryStreamMode with an explicit query dialect: the
// statement text is parsed by the dialect's front end and then flows
// through exactly the same compile cache, planner, and streaming cursor
// as SQL.
func (p *Platform) QueryDialect(ctx context.Context, dialect Dialect, mode ResultMode, text string, args ...any) (*Rows, error) {
	cq, err := p.CompileDialect(ctx, dialect, text, mode)
	if err != nil {
		return nil, err
	}
	res := cq.Res
	if len(args) != res.ParamCount {
		return nil, fmt.Errorf("aqualogic: statement has %d parameter(s), got %d value(s)", res.ParamCount, len(args))
	}
	ext := make(map[string]Sequence, len(args))
	for i, a := range args {
		v, err := ToAtomic(a)
		if err != nil {
			return nil, fmt.Errorf("aqualogic: parameter %d: %v", i+1, err)
		}
		ext[fmt.Sprintf("p%d", i+1)] = xdm.SequenceOf(v)
	}
	cur := p.Engine.EvalStream(ctx, cq.Plan, ext, nil)
	if err := cur.Prime(); err != nil {
		cur.Close()
		return nil, err
	}
	cols := make([]resultset.Column, len(res.Columns))
	for i, c := range res.Columns {
		cols[i] = resultset.Column{Label: c.Label, ElementName: c.ElementName, Type: c.Type, Nullable: c.Nullable}
	}
	if mode == ModeText {
		return resultset.NewStreaming(resultset.StreamText(cur, cols)), nil
	}
	return resultset.NewStreaming(resultset.StreamXML(cur, cols)), nil
}

// RegisterDriver exposes the platform through database/sql under the given
// DSN name: sql.Open("aqualogic", name).
func (p *Platform) RegisterDriver(name string) {
	srv := &driver.Server{
		App:        p.App,
		Engine:     p.Engine,
		Meta:       p.metaSource(),
		Cache:      p.queryCache(), // one compile cache across facade + all connections
		DefineView: p.DefineView,
	}
	p.cacheMu.Lock()
	if p.resilience != nil {
		srv.QueryTimeout = p.resilience.QueryTimeout
	}
	p.cacheMu.Unlock()
	driver.RegisterServer(name, srv)
}

// metaCache returns the platform's cache if it has been built yet.
func (p *Platform) metaCache() *catalog.Cache {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	return p.cache
}

// MetadataStats reports the metadata cache's hit/miss counters. In a
// federation the per-backend counters are summed; FederationStats breaks
// them out per source.
func (p *Platform) MetadataStats() catalog.CacheStats {
	if fed := p.federation(); fed != nil {
		var sum catalog.CacheStats
		for _, name := range fed.SourceNames() {
			if st, ok := fed.SourceStats(name); ok {
				sum.Hits += st.Hits
				sum.Misses += st.Misses
				sum.StaleServes += st.StaleServes
				sum.Shared += st.Shared
				sum.Degraded = sum.Degraded || st.Degraded
			}
		}
		return sum
	}
	if c := p.metaCache(); c != nil {
		return c.Stats()
	}
	return catalog.CacheStats{}
}

// SourceHealth is one federation backend's health snapshot: its metadata
// cache counters, its current generation, and the circuit breakers of
// the data services registered against it.
type SourceHealth struct {
	// Name is the backend's registration name.
	Name string
	// Generation is the backend's metadata epoch (advanced by
	// invalidations, refresh changes, and degradation transitions).
	Generation uint64
	// Metadata is the backend's cache counters.
	Metadata catalog.CacheStats
	// Breakers maps data service names to breaker state for services
	// registered against this source (the App owns services registered
	// without a source tag). Nil until EnableResilience has installed the
	// guard and calls have exercised it.
	Breakers map[string]BreakerState
}

// FederationStats snapshots every backend's health in registration
// order; nil when no sources have been added.
func (p *Platform) FederationStats() []SourceHealth {
	fed := p.federation()
	if fed == nil {
		return nil
	}
	p.cacheMu.Lock()
	guard := p.guard
	p.cacheMu.Unlock()
	var breakers map[string]resilient.BreakerState
	if guard != nil {
		breakers = guard.Snapshot()
	}
	names := fed.SourceNames()
	out := make([]SourceHealth, 0, len(names))
	for _, name := range names {
		h := SourceHealth{Name: name, Generation: fed.SourceGeneration(name)}
		if st, ok := fed.SourceStats(name); ok {
			h.Metadata = st
		}
		for svc, state := range breakers {
			// Source-tagged registrations name breakers "<source>/<local>";
			// untagged ones (in-process App functions) have no slash.
			if i := strings.IndexByte(svc, '/'); i >= 0 {
				if !strings.EqualFold(svc[:i], name) {
					continue
				}
			} else if !strings.EqualFold(name, p.App.Name) {
				continue
			}
			if h.Breakers == nil {
				h.Breakers = map[string]BreakerState{}
			}
			h.Breakers[svc] = state
		}
		out = append(out, h)
	}
	return out
}

// Explain runs a traced translation: the returned Trace holds one stage
// record per pipeline stage (lex, parse, semantic-validate, restructure,
// generate, serialize) with wall time, sizes, and stage detail — the
// programmatic form of the driver's EXPLAIN statement.
func (p *Platform) Explain(sql string, mode ResultMode) (*Translation, *Trace, error) {
	return p.ExplainDialect(DialectSQL, sql, mode)
}

// ExplainDialect is Explain with an explicit query dialect; the stage
// trace starts with the dialect's own lex/parse spans.
func (p *Platform) ExplainDialect(dialect Dialect, text string, mode ResultMode) (*Translation, *Trace, error) {
	fe, err := qfront.Lookup(dialect)
	if err != nil {
		return nil, nil, err
	}
	tr := obsv.NewTrace(text)
	tr.Hook = obsv.Global.ObserveStage
	res, err := p.Translator(mode).TranslateFrontend(context.Background(), fe, text, tr)
	return res, tr, err
}

// PlanQuery builds the evaluator's execution plan for a translation — the
// plan the driver caches per prepared statement. Its Describe method
// renders the clause pipeline (hash joins, pushed filters, hoisted
// invariants) that EXPLAIN and sql2xq -explain print.
func PlanQuery(t *Translation) *QueryPlan {
	return xqeval.NewPlan(t.Query)
}

// Stats snapshots the process-wide pipeline metrics (queries translated
// and executed, metadata- and compile-cache hits/misses/evictions, rows
// materialized, evaluator steps, per-stage timing aggregates).
// Per-connection figures are available via the driver's Stats() (see
// driver.StatsReporter); the platform's own metadata-cache counters via
// MetadataStats, and its compile-cache counters via CompileStats.
func Stats() PipelineStats {
	return obsv.Global.Snapshot()
}

// ToAtomic converts a Go value to an XQuery atomic value, accepting the
// types database/sql users pass as parameters.
func ToAtomic(v any) (xdm.Atomic, error) {
	return xdm.FromGo(v)
}

// RegisterRows installs a parameterless data service function returning
// fixed rows on an engine — the quickest way to serve custom data.
func RegisterRows(e *Engine, namespace, local string, rows []*Element) {
	e.RegisterRows(namespace, local, rows)
}

// NewRow builds a flat row element: NewRow("CUSTOMERS", "CUSTOMERID", "55",
// "CUSTOMERNAME", "Joe"). Empty values are skipped (SQL NULL).
func NewRow(rowElement string, colValuePairs ...string) *Element {
	row := xdm.NewElement(rowElement)
	for i := 0; i+1 < len(colValuePairs); i += 2 {
		if colValuePairs[i+1] != "" {
			row.AddChild(xdm.NewTextElement(colValuePairs[i], colValuePairs[i+1]))
		}
	}
	return row
}

// DefineView registers a logical data service: a new data service function
// whose body is a SQL view over existing data services — the paper's §2
// layering, where logical data services are authored on top of physical
// ones and are themselves queryable (and further composable). The view is
// translated once; each call evaluates the stored query and returns flat
// rows shaped like any physical function's.
//
// The view appears as table `name` in schema `path/name`, with columns
// named by the view's (necessarily unique) output labels.
func (p *Platform) DefineView(path, name, sql string) error {
	res, err := p.Translate(sql, ModeXML)
	if err != nil {
		return fmt.Errorf("aqualogic: define view %s: %w", name, err)
	}
	if res.ParamCount != 0 {
		return fmt.Errorf("aqualogic: define view %s: views cannot contain parameter markers", name)
	}
	seen := map[string]bool{}
	cols := make([]Column, len(res.Columns))
	for i, c := range res.Columns {
		label := strings.ToUpper(c.Label)
		if seen[label] {
			return fmt.Errorf("aqualogic: define view %s: duplicate output column %s (alias the columns uniquely)", name, label)
		}
		seen[label] = true
		cols[i] = Column{Name: label, Type: c.Type, Nullable: c.Nullable,
			Precision: c.Precision, Scale: c.Scale}
	}
	if _, err := p.metaSource().Lookup(catalog.TableRef{Table: name}); err == nil {
		return fmt.Errorf("aqualogic: define view %s: a table with that name already exists", name)
	}

	fn := catalog.NewRelationalImport(path, name, cols)
	p.App.AddDSFile(&DSFile{Path: path, Name: name, Functions: []*Function{fn}})
	// The metadata cache may hold a negative entry for the new name; the
	// generation bump from Invalidate retires compiled artifacts by keying,
	// and flushing the compile cache frees them immediately. In a
	// federation only the App backend changed, so only it is invalidated —
	// artifacts over the other backends stay cached (per-source hit
	// validation retires the ones that touched the App).
	if fed := p.federation(); fed != nil {
		fed.InvalidateSource(p.App.Name)
	} else {
		if c := p.metaCache(); c != nil {
			c.Invalidate()
		}
		p.cacheMu.Lock()
		qc := p.qc
		p.cacheMu.Unlock()
		if qc != nil {
			qc.Invalidate()
		}
	}
	// Catalog contents changed: collected statistics may describe sources
	// the view now shadows or composes over.
	p.Engine.InvalidateSourceStats()

	query := res.Query
	resCols := res.Columns
	p.Engine.Register(fn.Namespace, fn.Name, func(args []Sequence) (Sequence, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("view %s takes no arguments", name)
		}
		out, err := p.Engine.Eval(query)
		if err != nil {
			return nil, fmt.Errorf("view %s: %w", name, err)
		}
		it, err := out.Singleton()
		if err != nil {
			return nil, fmt.Errorf("view %s: %v", name, err)
		}
		recordset, ok := it.(*xdm.Element)
		if !ok {
			return nil, fmt.Errorf("view %s: unexpected result shape", name)
		}
		var rows Sequence
		for _, rec := range recordset.ChildElements("RECORD") {
			row := xdm.NewElement(name)
			for i, c := range resCols {
				src := rec.FirstChildElement(c.ElementName)
				if src == nil {
					continue // NULL stays absent
				}
				row.AddChild(xdm.NewTextElement(cols[i].Name, src.StringValue()))
			}
			rows = append(rows, row)
		}
		return rows, nil
	})
	return nil
}
